#include "util/serving.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <list>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "data/dataset.hpp"
#include "util/cancel.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/reqctx.hpp"
#include "util/rng.hpp"
#include "util/socket_io.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

#ifdef ADARNET_SERVING_SOCKETS
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace adarnet::util::serving {

const char* to_string(ServiceStage stage) {
  switch (stage) {
    case ServiceStage::kFull: return "full";
    case ServiceStage::kCapped: return "capped";
    case ServiceStage::kCached: return "cached";
    case ServiceStage::kFreestream: return "freestream";
  }
  return "unknown";
}

namespace {

// --- flat-JSON request parsing ---------------------------------------------
// The request body is a flat JSON object of string/number fields. This is a
// targeted scanner for that shape (quoted keys, number or quoted-string
// values), not a general JSON parser — util/bench_compare owns the general
// reader, but it drops string leaves, which /solve needs for "case".

bool find_raw_value(const std::string& body, const std::string& key,
                    std::string& out) {
  const std::string needle = "\"" + key + "\"";
  std::size_t at = body.find(needle);
  if (at == std::string::npos) return false;
  at += needle.size();
  while (at < body.size() && (body[at] == ' ' || body[at] == '\t')) ++at;
  if (at >= body.size() || body[at] != ':') return false;
  ++at;
  while (at < body.size() &&
         (body[at] == ' ' || body[at] == '\t' || body[at] == '\n' ||
          body[at] == '\r')) {
    ++at;
  }
  if (at >= body.size()) return false;
  if (body[at] == '"') {
    const std::size_t end = body.find('"', at + 1);
    if (end == std::string::npos) return false;
    out = body.substr(at + 1, end - at - 1);
    return true;
  }
  std::size_t end = at;
  while (end < body.size() && body[end] != ',' && body[end] != '}' &&
         body[end] != '\n' && body[end] != '\r' && body[end] != ' ') {
    ++end;
  }
  out = body.substr(at, end - at);
  return !out.empty();
}

bool parse_number(const std::string& raw, double& out) {
  char* end = nullptr;
  out = std::strtod(raw.c_str(), &end);
  return end != raw.c_str() && std::isfinite(out);
}

// --- HTTP plumbing ----------------------------------------------------------

std::string http_response(const char* status, const std::string& body,
                          const std::string& extra_headers = "") {
  std::string out = "HTTP/1.1 ";
  out += status;
  out += "\r\nContent-Type: application/json\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\n";
  out += extra_headers;
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

std::string json_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// --- response summaries -----------------------------------------------------

// The response payload: a summary of the solved state, small enough to
// cache and to ship in one write. (Full-field export stays an io/vtk
// concern; the service contract is the summary + quality/degradation
// metadata.)
struct Summary {
  bool converged = false;
  bool cancelled = false;
  int iterations = 0;
  double residual = 0.0;
  double umax = 0.0;   ///< max speed over the solved composite field
  double umean = 0.0;  ///< mean speed over the solved composite field
  bool finite = true;
  std::string fallback = "none";  ///< pipeline rung (core::FallbackStage)
};

Summary summarize(const core::PipelineResult& r) {
  Summary s;
  s.converged = r.converged;
  s.cancelled = r.cancelled;
  s.iterations = r.ps_iterations;
  s.residual = r.residual;
  s.fallback = core::to_string(r.fallback_stage);
  double umax = 0.0;
  double sum = 0.0;
  long long n = 0;
  const auto& u_patches = r.solution.channel(0);
  const auto& v_patches = r.solution.channel(1);
  for (std::size_t k = 0; k < u_patches.size(); ++k) {
    const auto& u = u_patches[k];
    const auto& v = v_patches[k];
    for (std::size_t i = 0; i < u.size(); ++i) {
      const double speed = std::sqrt(u[i] * u[i] + v[i] * v[i]);
      if (!std::isfinite(speed)) {
        s.finite = false;
        continue;
      }
      umax = std::max(umax, speed);
      sum += speed;
      ++n;
    }
  }
  s.umax = umax;
  s.umean = n > 0 ? sum / static_cast<double>(n) : 0.0;
  return s;
}

std::string summary_json(const SolveRequest& req, ServiceStage stage,
                         const Summary& s, bool deadline_hit, bool from_cache,
                         double queue_s, double solve_s,
                         const std::string& trace_id) {
  std::string out = "{";
  out += "\"case\": \"" + req.case_name + "\"";
  if (!trace_id.empty()) out += ", \"trace_id\": \"" + trace_id + "\"";
  out += ", \"re\": " + json_number(req.re);
  out += ", \"service_stage\": \"" + std::string(to_string(stage)) + "\"";
  out += ", \"fallback_stage\": \"" + s.fallback + "\"";
  out += std::string(", \"converged\": ") + (s.converged ? "true" : "false");
  out += std::string(", \"cancelled\": ") + (s.cancelled ? "true" : "false");
  out += std::string(", \"deadline_hit\": ") + (deadline_hit ? "true" : "false");
  out += std::string(", \"cache\": ") + (from_cache ? "true" : "false");
  out += ", \"iterations\": " + std::to_string(s.iterations);
  out += ", \"residual\": " + json_number(s.residual);
  out += ", \"umax\": " + json_number(s.umax);
  out += ", \"umean\": " + json_number(s.umean);
  out += ", \"queue_s\": " + json_number(queue_s);
  out += ", \"solve_s\": " + json_number(solve_s);
  out += "}\n";
  return out;
}

}  // namespace

std::string parse_solve_request(const std::string& body, SolveRequest& req) {
  std::string raw;
  if (find_raw_value(body, "case", raw)) {
    req.case_name = raw;
  }
  if (find_raw_value(body, "re", raw)) {
    double v = 0.0;
    if (!parse_number(raw, v) || v < 1.0 || v > 1e9) {
      return "re must be a number in [1, 1e9]";
    }
    req.re = v;
  }
  if (find_raw_value(body, "deadline_ms", raw)) {
    double v = 0.0;
    if (!parse_number(raw, v) || v < 0.0) {
      return "deadline_ms must be a non-negative number";
    }
    req.deadline_s = v * 1e-3;
  }
  if (find_raw_value(body, "max_outer", raw)) {
    double v = 0.0;
    if (!parse_number(raw, v) || v < 1.0 || v > 1e6) {
      return "max_outer must be a number in [1, 1e6]";
    }
    req.max_outer = static_cast<int>(v);
  }
  if (find_raw_value(body, "tol", raw)) {
    double v = 0.0;
    if (!parse_number(raw, v) || v <= 0.0 || v > 1.0) {
      return "tol must be a number in (0, 1]";
    }
    req.tol = v;
  }
  static const char* kCases[] = {"channel", "flat_plate", "cylinder",
                                 "naca0012", "naca1412"};
  for (const char* name : kCases) {
    if (req.case_name == name) return "";
  }
  // The reason lands inside a JSON string in the 400 body: reflect the
  // unknown name with JSON-breaking characters blanked, in single quotes.
  std::string shown = req.case_name.substr(0, 32);
  for (char& c : shown) {
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) {
      c = '_';
    }
  }
  return "unknown case '" + shown +
         "' (channel|flat_plate|cylinder|naca0012|naca1412)";
}

#ifdef ADARNET_SERVING_SOCKETS

// ---------------------------------------------------------------------------

struct Server::Impl {
  explicit Impl(ServingConfig config) : cfg(std::move(config)) {}

  ServingConfig cfg;

  std::mutex lifecycle_mu;  // guards start/stop transitions
  std::atomic<bool> running{false};
  // Chained into every request token: flipping it cooperatively cancels
  // all in-flight solves, so stop() never waits for a full solve.
  std::atomic<bool> shutting_down{false};
  int listen_fd = -1;
  std::atomic<int> port{0};
  std::thread acceptor;
  std::vector<std::thread> workers;

  struct Conn {
    int fd = -1;
    CancelToken::Clock::time_point accepted;
  };
  std::mutex queue_mu;
  std::condition_variable queue_cv;
  std::deque<Conn> queue;

  // Monotonic counters (relaxed: they are diagnostics, not synchronisation).
  std::atomic<long long> n_accepted{0}, n_admitted{0}, n_shed{0},
      n_responses{0}, n_solves{0}, n_deadline_miss{0}, n_cancelled{0},
      n_crashes{0}, n_stalled{0};
  std::atomic<long long> n_stage[4] = {};
  std::atomic<int> max_depth{0};

  // Trailing-60s window / SLO bookkeeping. start_tp anchors the window
  // time axis; last_slo_us throttles gauge recomputation to ~1/s.
  CancelToken::Clock::time_point start_tp{};
  std::atomic<std::int64_t> last_slo_us{0};

  // EMA of full-solve wall seconds, driving the degradation decision.
  std::mutex ema_mu;
  double ema_full_s = 0.0;

  // LRU result cache keyed by (case, log-Re bucket).
  struct CacheEntry {
    std::string key;
    Summary summary;
  };
  std::mutex cache_mu;
  std::list<CacheEntry> lru;
  std::unordered_map<std::string, std::list<CacheEntry>::iterator> cache;

  // --- cache ----------------------------------------------------------------

  static std::string cache_key(const SolveRequest& req) {
    // 16 buckets per Re decade: close-enough scenarios share an entry.
    const long long bucket =
        std::llround(std::log10(std::max(req.re, 1.0)) * 16.0);
    return req.case_name + "/" + std::to_string(bucket);
  }

  bool cache_get(const std::string& key, Summary& out) {
    std::lock_guard<std::mutex> lock(cache_mu);
    const auto it = cache.find(key);
    if (it == cache.end()) return false;
    lru.splice(lru.begin(), lru, it->second);
    out = it->second->summary;
    return true;
  }

  void cache_put(const std::string& key, const Summary& summary) {
    if (cfg.cache_capacity <= 0) return;
    std::lock_guard<std::mutex> lock(cache_mu);
    const auto it = cache.find(key);
    if (it != cache.end()) {
      it->second->summary = summary;
      lru.splice(lru.begin(), lru, it->second);
      return;
    }
    lru.push_front(CacheEntry{key, summary});
    cache[key] = lru.begin();
    while (static_cast<int>(lru.size()) > cfg.cache_capacity) {
      cache.erase(lru.back().key);
      lru.pop_back();
    }
  }

  // --- admission ------------------------------------------------------------

  void acceptor_loop() {
    while (running.load(std::memory_order_acquire)) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (!running.load(std::memory_order_acquire)) break;
        continue;  // transient accept failure (EINTR etc.)
      }
      n_accepted.fetch_add(1, std::memory_order_relaxed);
      socket_io::set_io_timeout(fd, cfg.io_timeout_ms);

      // Bounded admission: the only buffering between accept and a worker
      // is this fixed-capacity queue. Full (or a storm fault) means an
      // immediate 503 + Retry-After — the shed path allocates nothing and
      // never blocks on the queue, so overload degrades throughput for
      // *new* requests while admitted ones keep their deadline budget.
      const bool storm = fault::fires("serving.queue.storm");
      bool pushed = false;
      std::size_t depth = 0;
      if (!storm) {
        std::lock_guard<std::mutex> lock(queue_mu);
        if (static_cast<int>(queue.size()) < cfg.queue_capacity) {
          queue.push_back(Conn{fd, CancelToken::Clock::now()});
          depth = queue.size();
          pushed = true;
        }
      }
      if (pushed) {
        n_admitted.fetch_add(1, std::memory_order_relaxed);
        int seen = max_depth.load(std::memory_order_relaxed);
        while (static_cast<int>(depth) > seen &&
               !max_depth.compare_exchange_weak(seen,
                                                static_cast<int>(depth))) {
        }
        metrics::gauge("serving.queue.depth")
            .set(static_cast<double>(depth));
        queue_cv.notify_one();
        continue;
      }
      n_shed.fetch_add(1, std::memory_order_relaxed);
      metrics::counter("serving.shed").add();
      const std::string retry_after =
          "Retry-After: " + std::to_string(cfg.retry_after_s) + "\r\n";
      socket_io::send_all(
          fd, http_response("503 Service Unavailable",
                            "{\"error\": \"overloaded\", \"retry_after_s\": " +
                                std::to_string(cfg.retry_after_s) + "}\n",
                            retry_after));
      ::close(fd);
      n_responses.fetch_add(1, std::memory_order_relaxed);
      // Shed requests are the tail the flight recorder exists for: record
      // a summary (no context ever existed — the shed path must stay
      // allocation-light) and a window point so the 60 s shed rate and the
      // SLO burn see refused load.
      if (cfg.recorder_depth > 0) {
        reqctx::RequestSummary s;
        s.trace_id = reqctx::next_trace_id();
        s.http_status = 503;
        s.service_stage = "shed";
        s.shed = true;
        s.start_us = trace::detail::now_us();
        s.end_us = s.start_us;
        reqctx::recorder().record_summary(s);
      }
      record_window_shed();
      maybe_update_slo();
    }
  }

  // --- workers --------------------------------------------------------------

  // Per-worker state: a model replica (AdarNet::infer mutates workspaces,
  // so replicas keep workers lock-free) sized to the served patch shape.
  struct WorkerCtx {
    std::unique_ptr<core::AdarNet> model;
  };

  void worker_loop() {
    WorkerCtx ctx;
    {
      util::Rng rng(cfg.seed);
      core::AdarNetConfig mcfg;
      mcfg.ph = cfg.wall_preset.ph;
      mcfg.pw = cfg.wall_preset.pw;
      ctx.model = std::make_unique<core::AdarNet>(mcfg, rng);
    }
    while (true) {
      Conn conn;
      {
        std::unique_lock<std::mutex> lock(queue_mu);
        queue_cv.wait(lock, [this] {
          return !queue.empty() || !running.load(std::memory_order_acquire);
        });
        if (queue.empty()) return;  // stopped and drained
        conn = queue.front();
        queue.pop_front();
        metrics::gauge("serving.queue.depth")
            .set(static_cast<double>(queue.size()));
      }
      // Request-scoped observability (DESIGN.md §15): the context is born
      // here, charged the queue wait, and bound to this thread so every
      // trace::Span and solver phase below lands in its tree.
      // recorder_depth == 0 disarms the whole path (no context, and the
      // span gate stays cold for this thread).
      std::unique_ptr<reqctx::RequestContext> rctx;
      if (cfg.recorder_depth > 0) {
        rctx = std::make_unique<reqctx::RequestContext>(
            reqctx::next_trace_id());
        const double queue_s =
            std::chrono::duration<double>(CancelToken::Clock::now() -
                                          conn.accepted)
                .count();
        rctx->add_phase(reqctx::Phase::kQueue, queue_s);
        // Anchor the trace at admission, not at worker pop, so the queue
        // wait renders at the front of the timeline.
        rctx->meta.start_us -=
            std::llround(std::max(queue_s, 0.0) * 1e6);
      }
      reqctx::Scope scope(rctx.get());
      ReqOutcome out;
      bool crashed = false;
      // The worker guard: a crash mid-dispatch (fault-injected or real)
      // degrades this request to a 500 and the worker lives on. handle_conn
      // never throws after closing the fd, so the fd here is always live.
      try {
        handle_conn(conn, ctx, rctx.get(), out);
      } catch (const std::exception& e) {
        crashed = true;
        out.status = 500;
        n_crashes.fetch_add(1, std::memory_order_relaxed);
        metrics::counter("serving.worker.crashes").add();
        ADR_LOG_WARN << "serving: worker crashed mid-request (" << e.what()
                     << "); degrading to 500 and continuing";
        socket_io::send_all(
            conn.fd,
            http_response("500 Internal Server Error",
                          "{\"error\": \"worker-crash\", \"degraded\": true}\n"));
        ::close(conn.fd);
        n_responses.fetch_add(1, std::memory_order_relaxed);
      }
      if (out.solve_path || crashed) {
        finish_request(conn, out, crashed, rctx.get());
      }
      maybe_update_slo();
    }
  }

  // Per-request outcome channel between handle_conn/handle_solve and the
  // finish/window bookkeeping in worker_loop.
  struct ReqOutcome {
    bool solve_path = false;      ///< routed to POST /solve
    int status = 0;               ///< HTTP status written (0 = none)
    bool deadline_expired = false;
  };

  void handle_conn(const Conn& conn, WorkerCtx& ctx,
                   reqctx::RequestContext* rctx, ReqOutcome& out) {
    std::string response;
    bool routed = false;
    {
      std::string raw;
      socket_io::ReadResult read;
      {
        const trace::Span read_span("serving.read");
        WallTimer read_timer;
        read = socket_io::read_http_request(conn.fd, raw, 64 * 1024);
        if (rctx != nullptr) {
          rctx->add_phase(reqctx::Phase::kRead, read_timer.seconds());
        }
      }
      if (read != socket_io::ReadResult::kOk) {
        if (read == socket_io::ReadResult::kTimeout) {
          n_stalled.fetch_add(1, std::memory_order_relaxed);
          metrics::counter("serving.stalled_reads").add();
          out.status = 408;
          response = http_response(
              "408 Request Timeout",
              "{\"error\": \"request read timed out\"}\n");
        } else if (read == socket_io::ReadResult::kTooLarge) {
          out.status = 413;
          response = http_response("413 Content Too Large",
                                   "{\"error\": \"request too large\"}\n");
        }
      } else {
        std::string method, target;
        {
          const std::size_t sp1 = raw.find(' ');
          const std::size_t sp2 = sp1 == std::string::npos
                                      ? std::string::npos
                                      : raw.find(' ', sp1 + 1);
          if (sp1 != std::string::npos && sp2 != std::string::npos) {
            method = raw.substr(0, sp1);
            target = raw.substr(sp1 + 1, sp2 - sp1 - 1);
          }
        }
        const std::size_t query = target.find('?');
        const std::string path =
            query == std::string::npos ? target : target.substr(0, query);

        routed = true;
        if (path == "/healthz" && (method == "GET" || method == "HEAD")) {
          out.status = 200;
          response = http_response("200 OK", "{\"status\": \"ok\"}\n");
        } else if (path == "/stats.json" &&
                   (method == "GET" || method == "HEAD")) {
          out.status = 200;
          response = http_response("200 OK", stats_json());
        } else if (path == "/solve" && method == "POST") {
          out.solve_path = true;
          std::size_t header_end = raw.find("\r\n\r\n");
          std::size_t skip = 4;
          if (header_end == std::string::npos) {
            header_end = raw.find("\n\n");
            skip = 2;
          }
          const std::string body = header_end == std::string::npos
                                       ? ""
                                       : raw.substr(header_end + skip);
          const trace::Span solve_span("serving.solve");
          response = handle_solve(body, conn, ctx, rctx, out);
        } else if (path == "/solve" || path == "/healthz" ||
                   path == "/stats.json") {
          out.status = 405;
          response = http_response("405 Method Not Allowed",
                                   "{\"error\": \"method not allowed\"}\n");
        } else {
          out.status = 404;
          response =
              http_response("404 Not Found", "{\"error\": \"not found\"}\n");
        }
      }
    }
    {
      const trace::Span respond_span("serving.respond");
      WallTimer respond_timer;
      if (!response.empty()) socket_io::send_all(conn.fd, response);
      ::close(conn.fd);
      if (rctx != nullptr) {
        rctx->add_phase(reqctx::Phase::kRespond, respond_timer.seconds());
      }
    }
    n_responses.fetch_add(1, std::memory_order_relaxed);
    if (routed) metrics::counter("serving.requests").add();
  }

  // Builds the /solve response. Throwing (the injected worker crash) is
  // only legal before any response bytes are written — the worker guard
  // turns it into a 500 on the still-open socket.
  std::string handle_solve(const std::string& body, const Conn& conn,
                           WorkerCtx& ctx, reqctx::RequestContext* rctx,
                           ReqOutcome& out) {
    WallTimer parse_timer;
    SolveRequest req;
    const std::string err = parse_solve_request(body, req);
    if (!err.empty()) {
      out.status = 400;
      if (rctx != nullptr) {
        rctx->add_phase(reqctx::Phase::kParse, parse_timer.seconds());
      }
      return http_response("400 Bad Request",
                           "{\"error\": \"" + err + "\"}\n");
    }
    const std::string tid =
        rctx != nullptr ? reqctx::trace_id_hex(rctx->trace_id())
                        : std::string();
    if (rctx != nullptr) {
      rctx->meta.case_name = req.case_name;
      rctx->meta.re = req.re;
    }

    // The deadline runs from *admission*: queue wait spends the budget, so
    // a request that waited too long degrades instead of starting a solve
    // it can no longer finish.
    const double deadline_s =
        std::min(req.deadline_s > 0.0 ? req.deadline_s : cfg.default_deadline_s,
                 cfg.max_deadline_s);
    CancelToken token;
    token.chain(&shutting_down);
    token.set_deadline(conn.accepted +
                       std::chrono::duration_cast<CancelToken::Clock::duration>(
                           std::chrono::duration<double>(deadline_s)));
    const double queue_s = std::chrono::duration<double>(
                               CancelToken::Clock::now() - conn.accepted)
                               .count();

    if (fault::fires("serving.worker.crash")) {
      throw std::runtime_error("injected worker crash (serving.worker.crash)");
    }

    mesh::CaseSpec spec;
    if (req.case_name == "channel") {
      spec = data::channel_case(req.re, cfg.wall_preset);
    } else if (req.case_name == "flat_plate") {
      spec = data::flat_plate_case(req.re, cfg.wall_preset);
    } else if (req.case_name == "cylinder") {
      spec = data::cylinder_case(req.re, cfg.body_preset);
    } else if (req.case_name == "naca0012") {
      spec = data::naca0012_case(req.re, cfg.body_preset);
    } else {
      spec = data::naca1412_case(req.re, cfg.body_preset);
    }
    if (rctx != nullptr) {
      rctx->add_phase(reqctx::Phase::kParse, parse_timer.seconds());
    }

    // --- the service degradation ladder ------------------------------------
    const double remaining = token.remaining_seconds();
    double ema = 0.0;
    {
      std::lock_guard<std::mutex> lock(ema_mu);
      if (ema_full_s == 0.0) ema_full_s = cfg.assumed_full_solve_s;
      ema = ema_full_s;
    }
    ServiceStage stage = ServiceStage::kFull;
    if (remaining <= cfg.min_solve_s) {
      Summary cached;
      if (cache_get(cache_key(req), cached)) {
        out.status = 200;
        record_stage(ServiceStage::kCached, rctx);
        record_deadline(token, out, rctx);
        return http_response(
            "200 OK", summary_json(req, ServiceStage::kCached, cached,
                                   !token.expired(), true, queue_s, 0.0,
                                   tid));
      }
      stage = ServiceStage::kFreestream;
    } else if (ema > 0.0 && remaining < cfg.full_headroom * ema) {
      stage = ServiceStage::kCapped;
    }

    if (stage == ServiceStage::kFreestream) {
      // O(1) analytic fallback: the freestream state the solver would be
      // seeded from — finite, honest about its quality (converged false,
      // residual 1 by definition of the normalised defect at freestream).
      Summary s;
      s.converged = false;
      s.cancelled = token.expired();
      s.iterations = 0;
      s.residual = 1.0;
      s.umax = spec.u_ref;
      s.umean = spec.u_ref;
      out.status = 200;
      if (rctx != nullptr) rctx->meta.cancelled = s.cancelled;
      record_stage(stage, rctx);
      record_deadline(token, out, rctx);
      return http_response("200 OK",
                           summary_json(req, stage, s, !token.expired(),
                                        false, queue_s, 0.0, tid));
    }

    // --- DNN + physics solve (full or capped budget) ------------------------
    core::PipelineConfig pcfg;
    pcfg.lr_solver = cfg.solver;
    pcfg.ps_solver = cfg.solver;
    pcfg.guards = cfg.guards;
    pcfg.cancel = &token;
    // The LR solve below runs outside run_adarnet_pipeline (so the field
    // can be reused for the per-request normalisation fit); it needs the
    // token on its own config.
    pcfg.lr_solver.cancel = &token;
    if (req.tol > 0.0) {
      pcfg.lr_solver.tol = req.tol;
      pcfg.ps_solver.tol = req.tol;
    }
    if (req.max_outer > 0) {
      pcfg.lr_solver.max_outer = req.max_outer;
      pcfg.ps_solver.max_outer = req.max_outer;
    }
    if (stage == ServiceStage::kCapped) {
      // Budget the outer iterations by the remaining fraction of a typical
      // full solve. The token still guards the tail, so an optimistic cap
      // costs at most one extra iteration past the deadline.
      const double scale = remaining / std::max(ema, 1e-9);
      const auto budget = [&](int base) {
        const int scaled = static_cast<int>(static_cast<double>(base) * scale);
        return std::clamp(scaled, 8, base);
      };
      pcfg.lr_solver.max_outer = budget(pcfg.lr_solver.max_outer);
      pcfg.ps_solver.max_outer = budget(pcfg.ps_solver.max_outer);
    }

    n_solves.fetch_add(1, std::memory_order_relaxed);
    // Measured-remainder glue: everything in this section that the
    // solver/pipeline/inference layers do not attribute themselves (LR
    // setup, normalisation fit, summarize, cache put) is the difference
    // between the section wall and the attribution the section added — a
    // measurement, not a guess, so the per-request phase sum keeps
    // tracking the request wall (bench-gated at 5%).
    const double attributed_before =
        rctx != nullptr ? rctx->attributed_seconds() : 0.0;
    WallTimer section_timer;
    WallTimer solve_timer;
    solver::SolveStats lr_stats;
    field::FlowField lr = data::solve_lr(spec, pcfg.lr_solver, &lr_stats);
    ctx.model->stats() = data::NormStats::fit({lr});
    const core::PipelineResult result = core::run_adarnet_pipeline(
        *ctx.model, spec, pcfg, lr, solve_timer.seconds(),
        lr_stats.iterations);
    const double solve_s = solve_timer.seconds();

    Summary s = summarize(result);
    if (result.cancelled || lr_stats.cancelled) {
      s.cancelled = true;
      n_cancelled.fetch_add(1, std::memory_order_relaxed);
      metrics::counter("serving.cancelled").add();
    }

    // Learn the cost of a *full* uncancelled solve; degraded runs would
    // bias the estimate optimistic and re-promote work the deadline can't
    // afford.
    if (stage == ServiceStage::kFull && !s.cancelled) {
      std::lock_guard<std::mutex> lock(ema_mu);
      ema_full_s = ema_full_s == 0.0 ? solve_s
                                     : 0.7 * ema_full_s + 0.3 * solve_s;
    }
    if (s.finite && s.iterations > 0) {
      cache_put(cache_key(req), s);
    }
    out.status = 200;
    if (rctx != nullptr) {
      rctx->meta.cancelled = s.cancelled;
      rctx->add_phase(reqctx::Phase::kPipelineGlue,
                      std::max(0.0, section_timer.seconds() -
                                        (rctx->attributed_seconds() -
                                         attributed_before)));
    }
    record_stage(stage, rctx);
    record_deadline(token, out, rctx);
    return http_response("200 OK",
                         summary_json(req, stage, s, !token.expired(), false,
                                      queue_s, solve_s, tid));
  }

  void record_stage(ServiceStage stage, reqctx::RequestContext* rctx) {
    n_stage[static_cast<int>(stage)].fetch_add(1, std::memory_order_relaxed);
    metrics::counter(std::string("serving.stage.") + to_string(stage)).add();
    if (rctx != nullptr) rctx->meta.service_stage = to_string(stage);
  }

  // NB: the /solve JSON reports "deadline_hit": true when the response made
  // its deadline (call sites pass !token.expired()); the recorder summary
  // stores the opposite-sense deadline_expired flag. Both come from here.
  void record_deadline(const CancelToken& token, ReqOutcome& out,
                       reqctx::RequestContext* rctx) {
    const bool expired = token.expired();
    out.deadline_expired = expired;
    if (rctx != nullptr) rctx->meta.deadline_expired = expired;
    if (expired) {
      n_deadline_miss.fetch_add(1, std::memory_order_relaxed);
      metrics::counter("serving.deadline_miss").add();
    }
  }

  // --- windowed rates + SLO (DESIGN.md §15) --------------------------------
  // Each finished /solve (and each shed) lands one point in a
  // metrics::TimeSeries keyed by seconds-since-start; readers count the
  // points inside the trailing 60 s. Under sustained overload the ring
  // capacity degrades the window to "the most recent N events", which still
  // orders the burn rate correctly.

  double now_s() const {
    return std::chrono::duration<double>(CancelToken::Clock::now() -
                                         start_tp)
        .count();
  }

  void record_window_request(double wall_s, bool good,
                             bool deadline_expired) {
    const double t = now_s();
    metrics::series("serving.window.requests").append(t, wall_s);
    metrics::series("serving.window.good").append(t, good ? 1.0 : 0.0);
    if (deadline_expired) {
      metrics::series("serving.window.deadline").append(t, 1.0);
    }
  }

  void record_window_shed() {
    metrics::series("serving.window.shed").append(now_s(), 1.0);
  }

  struct WindowStats {
    double span_s = 0.0;      ///< min(uptime, 60 s)
    long long requests = 0;   ///< /solve responses in the window
    long long good = 0;       ///< ... that met the SLO
    long long shed = 0;       ///< 503s at admission in the window
    long long deadline_misses = 0;
    double qps = 0.0;         ///< offered load: (requests + shed) / span
    double shed_rate = 0.0;
    double deadline_miss_rate = 0.0;
    double good_rate = 1.0;   ///< good / offered (shed counts against it)
    double burn_rate = 0.0;   ///< (1 - good_rate) / (1 - availability)
  };

  WindowStats window_stats() {
    WindowStats w;
    const double now = now_s();
    const double lo = now - 60.0;
    for (const auto& p :
         metrics::series("serving.window.requests").snapshot()) {
      if (p.x >= lo) ++w.requests;
    }
    for (const auto& p : metrics::series("serving.window.good").snapshot()) {
      if (p.x >= lo && p.y > 0.5) ++w.good;
    }
    for (const auto& p : metrics::series("serving.window.shed").snapshot()) {
      if (p.x >= lo) ++w.shed;
    }
    for (const auto& p :
         metrics::series("serving.window.deadline").snapshot()) {
      if (p.x >= lo) ++w.deadline_misses;
    }
    w.span_s = std::clamp(now, 1e-9, 60.0);
    const long long offered = w.requests + w.shed;
    w.qps = static_cast<double>(offered) / w.span_s;
    if (offered > 0) {
      w.shed_rate =
          static_cast<double>(w.shed) / static_cast<double>(offered);
      w.good_rate =
          static_cast<double>(w.good) / static_cast<double>(offered);
    }
    if (w.requests > 0) {
      w.deadline_miss_rate = static_cast<double>(w.deadline_misses) /
                             static_cast<double>(w.requests);
    }
    w.burn_rate = (1.0 - w.good_rate) /
                  std::max(1e-9, 1.0 - cfg.slo_availability);
    return w;
  }

  void maybe_update_slo() {
    const std::int64_t now_us = trace::detail::now_us();
    std::int64_t last = last_slo_us.load(std::memory_order_relaxed);
    if (now_us - last < 1000000 &&
        last != 0) {  // at most ~1 recompute per second
      return;
    }
    if (!last_slo_us.compare_exchange_strong(last, now_us,
                                             std::memory_order_relaxed)) {
      return;  // another thread is on it
    }
    const WindowStats w = window_stats();
    metrics::gauge("serving.window.qps").set(w.qps);
    metrics::gauge("serving.window.shed_rate").set(w.shed_rate);
    metrics::gauge("serving.window.deadline_miss_rate")
        .set(w.deadline_miss_rate);
    metrics::gauge("serving.slo.good_rate").set(w.good_rate);
    metrics::gauge("serving.slo.burn_rate").set(w.burn_rate);
  }

  // Request epilogue: latency histogram (with the trace id as an
  // OpenMetrics exemplar), window point, and the flight-recorder hand-off.
  // Runs for every /solve and every worker crash; plain GETs stay out of
  // the request-flow accounting.
  void finish_request(const Conn& conn, const ReqOutcome& out, bool crashed,
                      reqctx::RequestContext* rctx) {
    const double wall_s = std::chrono::duration<double>(
                              CancelToken::Clock::now() - conn.accepted)
                              .count();
    const bool good = out.status == 200 && !out.deadline_expired &&
                      wall_s * 1e3 <= cfg.slo_latency_ms;
    metrics::histogram("serving.latency.ns")
        .observe(std::llround(wall_s * 1e9),
                 rctx != nullptr ? rctx->trace_id() : 0);
    record_window_request(wall_s, good, out.deadline_expired);
    if (rctx != nullptr) {
      rctx->meta.wall_s = wall_s;
      rctx->meta.http_status = out.status;
      rctx->meta.worker_crash = crashed;
      rctx->finalize(trace::detail::now_us());
      reqctx::recorder().record(std::move(*rctx));
    }
  }

  std::string stats_json() {
    const ServerStats s = snapshot();
    std::string out = "{";
    out += "\"accepted\": " + std::to_string(s.accepted);
    out += ", \"admitted\": " + std::to_string(s.admitted);
    out += ", \"shed\": " + std::to_string(s.shed);
    out += ", \"responses\": " + std::to_string(s.responses);
    out += ", \"solves\": " + std::to_string(s.solves);
    out += ", \"deadline_misses\": " + std::to_string(s.deadline_misses);
    out += ", \"cancelled\": " + std::to_string(s.cancelled);
    out += ", \"worker_crashes\": " + std::to_string(s.worker_crashes);
    out += ", \"stalled_reads\": " + std::to_string(s.stalled_reads);
    out += ", \"max_queue_depth\": " + std::to_string(s.max_queue_depth);
    out += ", \"queue_capacity\": " + std::to_string(cfg.queue_capacity);
    out += ", \"stages\": {\"full\": " + std::to_string(s.stage_full);
    out += ", \"capped\": " + std::to_string(s.stage_capped);
    out += ", \"cached\": " + std::to_string(s.stage_cached);
    out += ", \"freestream\": " + std::to_string(s.stage_freestream);
    out += "}";
    const WindowStats w = window_stats();
    out += ", \"window_60s\": {";
    out += "\"span_s\": " + json_number(w.span_s);
    out += ", \"requests\": " + std::to_string(w.requests);
    out += ", \"shed\": " + std::to_string(w.shed);
    out += ", \"deadline_misses\": " + std::to_string(w.deadline_misses);
    out += ", \"qps\": " + json_number(w.qps);
    out += ", \"shed_rate\": " + json_number(w.shed_rate);
    out += ", \"deadline_miss_rate\": " + json_number(w.deadline_miss_rate);
    out += ", \"good_rate\": " + json_number(w.good_rate);
    out += ", \"burn_rate\": " + json_number(w.burn_rate);
    out += "}}\n";
    return out;
  }

  ServerStats snapshot() const {
    ServerStats s;
    s.accepted = n_accepted.load(std::memory_order_relaxed);
    s.admitted = n_admitted.load(std::memory_order_relaxed);
    s.shed = n_shed.load(std::memory_order_relaxed);
    s.responses = n_responses.load(std::memory_order_relaxed);
    s.solves = n_solves.load(std::memory_order_relaxed);
    s.deadline_misses = n_deadline_miss.load(std::memory_order_relaxed);
    s.cancelled = n_cancelled.load(std::memory_order_relaxed);
    s.worker_crashes = n_crashes.load(std::memory_order_relaxed);
    s.stalled_reads = n_stalled.load(std::memory_order_relaxed);
    s.stage_full = n_stage[0].load(std::memory_order_relaxed);
    s.stage_capped = n_stage[1].load(std::memory_order_relaxed);
    s.stage_cached = n_stage[2].load(std::memory_order_relaxed);
    s.stage_freestream = n_stage[3].load(std::memory_order_relaxed);
    s.max_queue_depth = max_depth.load(std::memory_order_relaxed);
    return s;
  }
};

Server::Server(ServingConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}

Server::~Server() { stop(); }

bool Server::start() {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.lifecycle_mu);
  if (im.running.load(std::memory_order_acquire)) return false;
  if (im.cfg.port < 0 || im.cfg.port > 65535) return false;
  if (im.cfg.workers < 1 || im.cfg.queue_capacity < 1) return false;
  if (im.cfg.wall_preset.ph != im.cfg.body_preset.ph ||
      im.cfg.wall_preset.pw != im.cfg.body_preset.pw) {
    ADR_LOG_WARN << "serving: wall/body patch shapes differ; one model "
                    "replica cannot serve both";
    return false;
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(im.cfg.port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    im.port.store(static_cast<int>(ntohs(bound.sin_port)),
                  std::memory_order_release);
  }
  im.listen_fd = fd;
  im.start_tp = CancelToken::Clock::now();
  im.last_slo_us.store(0, std::memory_order_relaxed);
  if (im.cfg.recorder_depth > 0) {
    reqctx::FlightRecorder::Config rc;
    rc.summary_capacity = std::max(512, 2 * im.cfg.recorder_depth);
    rc.trace_capacity = im.cfg.recorder_depth;
    rc.slowest = im.cfg.recorder_slowest;
    rc.sample_every = im.cfg.recorder_sample_every;
    reqctx::recorder().configure(rc);
  }
  metrics::gauge("serving.slo.latency_objective_ms")
      .set(im.cfg.slo_latency_ms);
  metrics::gauge("serving.slo.availability_objective")
      .set(im.cfg.slo_availability);
  im.shutting_down.store(false, std::memory_order_release);
  im.running.store(true, std::memory_order_release);
  im.acceptor = std::thread([&im] { im.acceptor_loop(); });
  im.workers.reserve(static_cast<std::size_t>(im.cfg.workers));
  for (int w = 0; w < im.cfg.workers; ++w) {
    im.workers.emplace_back([&im] { im.worker_loop(); });
  }
  ADR_LOG_INFO << "serving: http://127.0.0.1:"
               << im.port.load(std::memory_order_acquire) << " ("
               << im.cfg.workers << " workers, queue "
               << im.cfg.queue_capacity << ", POST /solve)";
  return true;
}

void Server::stop() {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.lifecycle_mu);
  if (!im.running.load(std::memory_order_acquire)) return;
  // Order matters: flip the chained-cancel flag first so in-flight solves
  // wind down cooperatively while the listener drains.
  im.shutting_down.store(true, std::memory_order_release);
  im.running.store(false, std::memory_order_release);
  ::shutdown(im.listen_fd, SHUT_RDWR);
  ::close(im.listen_fd);
  im.listen_fd = -1;
  im.queue_cv.notify_all();
  if (im.acceptor.joinable()) im.acceptor.join();
  for (std::thread& w : im.workers) {
    if (w.joinable()) w.join();
  }
  im.workers.clear();
  im.port.store(0, std::memory_order_release);
}

bool Server::running() const {
  return impl_->running.load(std::memory_order_acquire);
}

int Server::bound_port() const {
  return impl_->port.load(std::memory_order_acquire);
}

const ServingConfig& Server::config() const { return impl_->cfg; }

ServerStats Server::stats() const { return impl_->snapshot(); }

#else  // !ADARNET_SERVING_SOCKETS

struct Server::Impl {
  explicit Impl(ServingConfig config) : cfg(std::move(config)) {}
  ServingConfig cfg;
};

Server::Server(ServingConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}
Server::~Server() = default;
bool Server::start() { return false; }
void Server::stop() {}
bool Server::running() const { return false; }
int Server::bound_port() const { return 0; }
const ServingConfig& Server::config() const { return impl_->cfg; }
ServerStats Server::stats() const { return {}; }

#endif  // ADARNET_SERVING_SOCKETS

}  // namespace adarnet::util::serving
