// Deterministic fault-injection registry for robustness testing.
//
// Production code declares *sites* — named places where a failure can be
// simulated — via fires()/corrupt()/io_fails(). Tests arm a site with a
// FaultSpec that says on which hit to start firing and for how many hits;
// the registry counts hits deterministically, so a test can target "the
// third outer iteration of the second solve" exactly.
//
// Disarmed cost: every site entry first reads one process-wide relaxed
// atomic counter (armed_sites() == 0) and returns immediately — no lock,
// no string hashing, no branch beyond the counter check. Sites may
// therefore sit inside solver iteration loops.
//
// Sites currently wired in (see DESIGN.md §7 for the full fault model):
//   solver.diverge       rans solve()/iterate(): NaN the state this iteration
//   solver.outer.stall   rans solve()/iterate(): sleep param_ms per outer
//                        iteration (deterministic slow-solve for deadline
//                        and cancellation tests, DESIGN.md §13)
//   adarnet.infer.nan    AdarNet::infer(): corrupt the decoder predictions
//   trainer.nan_batch    trainer: corrupt one decoder gradient batch
//   nn.serialize.write   save_parameters(): simulated write failure
//   io.vtk.write         vtk/pgm writers: simulated write failure
//   serving.worker.crash serving worker: throw mid-dispatch (worker survives,
//                        request degrades — DESIGN.md §13)
//   serving.queue.storm  serving admission: treat the queue as full (forced
//                        503 shedding storm)
#pragma once

#include <atomic>
#include <cstddef>
#include <string>

namespace adarnet::util::fault {

/// When an armed site fires: hits `after` times without firing, then fires
/// on the next `count` hits (count < 0 = every hit from then on).
/// `param_ms` parameterises sites that need a magnitude (stall duration).
struct FaultSpec {
  int after = 0;
  int count = 1;
  int param_ms = 0;
};

namespace detail {
/// Number of armed sites; the disarmed fast path is a single relaxed load.
inline std::atomic<int> g_armed_sites{0};

/// Slow path: counts one hit of `site` and reports whether it fires.
bool hit(const char* site);
}  // namespace detail

/// True while at least one site is armed.
inline bool armed() {
  return detail::g_armed_sites.load(std::memory_order_relaxed) != 0;
}

/// Arms `site` (replacing any previous spec and resetting its counters).
void arm(const std::string& site, FaultSpec spec = {});

/// Disarms `site`; hit/fire counters of the site are kept for inspection.
void disarm(const std::string& site);

/// Disarms everything and clears all counters. Tests call this in
/// SetUp/TearDown so arming never leaks across tests.
void reset();

/// Times `site` was hit / fired since the last reset (0 if never seen).
int hits(const std::string& site);
int fired(const std::string& site);

/// Counts one hit of `site`; true when the armed spec says to fire.
/// Always false (and counts nothing) while no site is armed.
inline bool fires(const char* site) {
  return armed() && detail::hit(site);
}

/// NaN-corrupts `n` values if `site` fires; returns whether it fired.
bool corrupt(const char* site, float* data, std::size_t n);
bool corrupt(const char* site, double* data, std::size_t n);

/// Sleeps the armed spec's param_ms if `site` fires; returns whether it
/// fired. Deterministic "this stage is slow" injection for deadline tests.
bool stall(const char* site);

}  // namespace adarnet::util::fault
