// Shared POSIX socket I/O helpers for the telemetry and serving servers
// (DESIGN.md §10, §13): per-connection timeouts, EINTR-safe reads/writes,
// and a bounded HTTP request reader.
//
// Two failure modes these exist to close off:
//   * A client that connects and never sends (or never reads) must not
//     wedge a server thread — every accepted socket gets SO_RCVTIMEO and
//     SO_SNDTIMEO so a stalled peer costs at most the timeout.
//   * A signal delivered mid-recv/send must not drop the request — every
//     loop retries EINTR, mirroring the acceptor's transient-failure
//     handling.
#pragma once

#if !defined(_WIN32)

#include <cerrno>
#include <cstddef>
#include <cstdlib>
#include <string>

#include <sys/socket.h>
#include <sys/time.h>

namespace adarnet::util::socket_io {

/// Applies SO_RCVTIMEO and SO_SNDTIMEO to `fd` (0 = no timeout).
inline void set_io_timeout(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// recv() that retries EINTR. Returns bytes read, 0 on orderly shutdown,
/// or -1 on error/timeout (errno EAGAIN/EWOULDBLOCK when SO_RCVTIMEO hit).
inline ssize_t recv_retry(int fd, char* buf, std::size_t n) {
  while (true) {
    const ssize_t got = ::recv(fd, buf, n, 0);
    if (got < 0 && errno == EINTR) continue;
    return got;
  }
}

/// Sends the whole buffer, retrying EINTR and short writes. Returns false
/// on error or send timeout.
inline bool send_all(int fd, const char* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) return false;
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

inline bool send_all(int fd, const std::string& s) {
  return send_all(fd, s.data(), s.size());
}

/// Outcome of read_http_request.
enum class ReadResult {
  kOk,        ///< headers complete (and the Content-Length body, if any)
  kTimeout,   ///< peer stalled past SO_RCVTIMEO — respond 408 and close
  kClosed,    ///< peer closed before a complete request
  kTooLarge,  ///< request exceeded max_bytes — respond 413 and close
};

/// Reads one HTTP request into `out`: everything up to the header
/// terminator plus, when a Content-Length header is present, that many
/// body bytes. Bounded by `max_bytes` of total buffering (never grows
/// past it, whatever the client claims). Expects set_io_timeout() to have
/// been applied so a silent peer resolves as kTimeout, not a wedge.
inline ReadResult read_http_request(int fd, std::string& out,
                                    std::size_t max_bytes) {
  out.clear();
  std::size_t header_end = std::string::npos;
  std::size_t body_expected = 0;
  char buf[4096];
  while (out.size() < max_bytes) {
    if (header_end != std::string::npos &&
        out.size() >= header_end + body_expected) {
      return ReadResult::kOk;
    }
    const ssize_t n = recv_retry(fd, buf, sizeof(buf));
    if (n < 0) return ReadResult::kTimeout;
    if (n == 0) {
      // Orderly close: fine after a complete header-only request.
      return header_end != std::string::npos &&
                     out.size() >= header_end + body_expected
                 ? ReadResult::kOk
                 : ReadResult::kClosed;
    }
    out.append(buf, static_cast<std::size_t>(n));
    if (header_end == std::string::npos) {
      std::size_t pos = out.find("\r\n\r\n");
      std::size_t skip = 4;
      if (pos == std::string::npos) {
        pos = out.find("\n\n");
        skip = 2;
      }
      if (pos != std::string::npos) {
        header_end = pos + skip;
        // Case-insensitive-enough Content-Length scan over the header block
        // (clients here are curl/tests; both spellings are covered).
        for (const char* key : {"Content-Length:", "content-length:"}) {
          const std::size_t at = out.substr(0, header_end).find(key);
          if (at != std::string::npos) {
            body_expected = static_cast<std::size_t>(
                std::strtoul(out.c_str() + at + 15, nullptr, 10));
            break;
          }
        }
        if (header_end + body_expected > max_bytes) {
          return ReadResult::kTooLarge;
        }
      }
    }
  }
  return ReadResult::kTooLarge;
}

}  // namespace adarnet::util::socket_io

#endif  // !_WIN32
