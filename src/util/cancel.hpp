// Cooperative cancellation with deadlines (DESIGN.md §13).
//
// A CancelToken is the request-scoped "stop asking for more work" signal of
// the serving path: the admission layer stamps it with the request deadline,
// threads a pointer through SolverConfig / PipelineConfig, and long-running
// code checks expired() at its natural quantum boundaries — per pipeline
// rung, per outer SIMPLE iteration (solver/rans.cpp), per V-cycle
// (solver/mg.cpp). Cancellation is always cooperative: nothing is killed,
// the checking code finishes its current quantum and returns its best
// iterate with converged = false, so the state handed back is never
// partially written.
//
// Tokens can also be cancelled explicitly (cancel()) and chained to a
// process- or server-lifetime flag (chain()), so a shutting-down server
// revokes every in-flight solve without tracking them individually.
//
// Cost model: expired() is one relaxed atomic load, one pointer check, and
// (only when a deadline is set) one steady_clock read. The call sites sit
// at quantum boundaries that each cover thousands of cell updates, so the
// check is free in profile terms.
#pragma once

#include <atomic>
#include <chrono>

namespace adarnet::util {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;

  /// Arms the deadline `seconds` from now (<= 0 expires immediately).
  void set_deadline_after(double seconds) {
    deadline_.store(Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                       std::chrono::duration<double>(seconds)),
                    std::memory_order_release);
    has_deadline_.store(true, std::memory_order_release);
  }

  /// Arms the deadline at an absolute time point (e.g. admission time +
  /// requested budget, so queue wait counts against the request).
  void set_deadline(Clock::time_point at) {
    deadline_.store(at, std::memory_order_release);
    has_deadline_.store(true, std::memory_order_release);
  }

  /// Sticky explicit cancellation (idempotent, thread-safe).
  void cancel() { cancelled_.store(true, std::memory_order_release); }

  /// Also considers the token cancelled while *parent is true (server
  /// shutdown flag). The pointee must outlive the token.
  void chain(const std::atomic<bool>* parent) { parent_ = parent; }

  /// True once cancelled, chained-cancelled, or past the deadline.
  [[nodiscard]] bool expired() const {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    if (parent_ != nullptr && parent_->load(std::memory_order_acquire)) {
      return true;
    }
    return has_deadline_.load(std::memory_order_acquire) &&
           Clock::now() >= deadline_.load(std::memory_order_acquire);
  }

  /// Seconds until the deadline (clamped at 0; a very large value when no
  /// deadline is set). Callers size degraded work budgets from this.
  [[nodiscard]] double remaining_seconds() const {
    if (cancelled_.load(std::memory_order_acquire)) return 0.0;
    if (parent_ != nullptr && parent_->load(std::memory_order_acquire)) {
      return 0.0;
    }
    if (!has_deadline_.load(std::memory_order_acquire)) return 1e30;
    const auto left = deadline_.load(std::memory_order_acquire) - Clock::now();
    const double s = std::chrono::duration<double>(left).count();
    return s > 0.0 ? s : 0.0;
  }

  [[nodiscard]] bool has_deadline() const {
    return has_deadline_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> has_deadline_{false};
  std::atomic<Clock::time_point> deadline_{Clock::time_point{}};
  const std::atomic<bool>* parent_ = nullptr;
};

}  // namespace adarnet::util
