// Minimal leveled logger for the ADARNet library.
//
// The logger writes to stderr and is intentionally tiny: benches and examples
// want readable progress lines, tests want silence. Level is a process-wide
// setting, defaulting to Info, overridable with ADARNET_LOG_LEVEL
// (trace|debug|info|warn|error|off).
#pragma once

#include <sstream>
#include <string>

namespace adarnet::util {

/// Severity levels, ordered: lower values are more verbose.
enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Returns the current process-wide log level.
LogLevel log_level();

/// Sets the process-wide log level.
void set_log_level(LogLevel level);

/// Parses a level name ("info", "warn", ...). Unknown names yield kInfo.
LogLevel parse_log_level(const std::string& name);

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Stream-style log statement: LOG_AT(LogLevel::kInfo) << "solved in " << n;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (level_ >= log_level()) detail::emit(level_, stream_.str());
  }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= log_level()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace adarnet::util

#define ADR_LOG_TRACE ::adarnet::util::LogLine(::adarnet::util::LogLevel::kTrace)
#define ADR_LOG_DEBUG ::adarnet::util::LogLine(::adarnet::util::LogLevel::kDebug)
#define ADR_LOG_INFO ::adarnet::util::LogLine(::adarnet::util::LogLevel::kInfo)
#define ADR_LOG_WARN ::adarnet::util::LogLine(::adarnet::util::LogLevel::kWarn)
#define ADR_LOG_ERROR ::adarnet::util::LogLine(::adarnet::util::LogLevel::kError)
