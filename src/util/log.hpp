// Minimal leveled logger for the ADARNet library.
//
// The logger writes to stderr and is intentionally tiny: benches and examples
// want readable progress lines, tests want silence. Level is a process-wide
// setting, defaulting to Info, overridable with ADARNET_LOG_LEVEL
// (trace|debug|info|warn|error|off).
//
// Emission is line-atomic: each record is formatted into one buffer and
// written with a single fwrite under the emit lock, so concurrent log
// statements from OpenMP regions never interleave mid-line. An optional
// JSON-lines sink (ADARNET_LOG_JSON=<path>, or set_json_log_path()) mirrors
// every record as {"ts_us": ..., "level": "...", "msg": "..."} so log
// events land beside the telemetry stream for machine consumption.
#pragma once

#include <sstream>
#include <string>

namespace adarnet::util {

/// Severity levels, ordered: lower values are more verbose.
enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Returns the current process-wide log level.
LogLevel log_level();

/// Sets the process-wide log level.
void set_log_level(LogLevel level);

/// Parses a level name ("info", "warn", ...). Unknown names yield kInfo.
LogLevel parse_log_level(const std::string& name);

/// Redirects the JSON-lines sink to `path` (append mode; "" disables).
/// Overrides the ADARNET_LOG_JSON default.
void set_json_log_path(const std::string& path);

/// The JSON-lines sink path ("" when disabled).
std::string json_log_path();

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Stream-style log statement: LOG_AT(LogLevel::kInfo) << "solved in " << n;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (level_ >= log_level()) detail::emit(level_, stream_.str());
  }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= log_level()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace adarnet::util

#define ADR_LOG_TRACE ::adarnet::util::LogLine(::adarnet::util::LogLevel::kTrace)
#define ADR_LOG_DEBUG ::adarnet::util::LogLine(::adarnet::util::LogLevel::kDebug)
#define ADR_LOG_INFO ::adarnet::util::LogLine(::adarnet::util::LogLevel::kInfo)
#define ADR_LOG_WARN ::adarnet::util::LogLine(::adarnet::util::LogLevel::kWarn)
#define ADR_LOG_ERROR ::adarnet::util::LogLine(::adarnet::util::LogLevel::kError)
