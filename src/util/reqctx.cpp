#include "util/reqctx.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "util/trace.hpp"

namespace adarnet::util::reqctx {

namespace {

thread_local RequestContext* t_current = nullptr;

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) out += c;
  }
  return out;
}

void append_num(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

void append_bool(std::string& out, bool v) { out += v ? "true" : "false"; }

}  // namespace

const char* to_string(Phase p) {
  switch (p) {
    case Phase::kQueue: return "queue";
    case Phase::kRead: return "read";
    case Phase::kParse: return "parse";
    case Phase::kInfer: return "infer";
    case Phase::kMomentum: return "momentum";
    case Phase::kRhieChow: return "rhie_chow";
    case Phase::kPressure: return "pressure";
    case Phase::kSa: return "sa";
    case Phase::kGhosts: return "ghosts";
    case Phase::kSolverGlue: return "solver_glue";
    case Phase::kPipelineGlue: return "pipeline_glue";
    case Phase::kRespond: return "respond";
    case Phase::kCount: break;
  }
  return "?";
}

RequestContext::RequestContext(std::uint64_t trace_id) {
  meta.trace_id = trace_id;
  meta.start_us = trace::detail::now_us();
  spans_.reserve(64);
  counters_.reserve(16);
}

void RequestContext::count(const char* name, long long delta) {
  for (CounterDelta& c : counters_) {
    if (c.name == name || std::strcmp(c.name, name) == 0) {
      c.delta += delta;
      return;
    }
  }
  counters_.push_back(CounterDelta{name, delta});
}

void RequestContext::finalize(std::int64_t end_us) {
  for (SpanNode& n : spans_) {
    if (n.dur_us < 0) n.dur_us = std::max<std::int64_t>(0, end_us - n.start_us);
  }
  open_ = -1;
  meta.end_us = end_us;
}

struct detail_access {
  static int open(RequestContext& ctx, const char* name,
                  std::int64_t start_us) {
    if (ctx.spans_.size() >= RequestContext::kMaxSpans) {
      ++ctx.dropped_spans_;
      return -1;
    }
    ctx.spans_.push_back(SpanNode{name, start_us, -1, ctx.open_});
    ctx.open_ = static_cast<int>(ctx.spans_.size()) - 1;
    return ctx.open_;
  }
  static void close(RequestContext& ctx, int index, std::int64_t end_us) {
    if (index < 0 || index >= static_cast<int>(ctx.spans_.size())) return;
    SpanNode& n = ctx.spans_[static_cast<std::size_t>(index)];
    n.dur_us = std::max<std::int64_t>(0, end_us - n.start_us);
    ctx.open_ = n.parent;
  }
  static void take(RequestContext& ctx, std::vector<SpanNode>* spans,
                   std::vector<CounterDelta>* counters) {
    spans->swap(ctx.spans_);
    counters->swap(ctx.counters_);
  }
};

RequestContext* current() { return t_current; }

Scope::Scope(RequestContext* ctx) : prev_(t_current) {
  t_current = ctx;
  if (ctx != nullptr && prev_ == nullptr) {
    detail::g_span_gate.fetch_add(1, std::memory_order_relaxed);
  } else if (ctx == nullptr && prev_ != nullptr) {
    detail::g_span_gate.fetch_sub(1, std::memory_order_relaxed);
  }
}

Scope::~Scope() {
  if (t_current != nullptr && prev_ == nullptr) {
    detail::g_span_gate.fetch_sub(1, std::memory_order_relaxed);
  } else if (t_current == nullptr && prev_ != nullptr) {
    detail::g_span_gate.fetch_add(1, std::memory_order_relaxed);
  }
  t_current = prev_;
}

std::uint64_t next_trace_id() {
  static std::atomic<std::uint64_t> counter{0};
  static const std::uint64_t seed = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  // splitmix64 over a seeded counter: process-unique, well mixed, cheap.
  std::uint64_t z =
      seed + 0x9e3779b97f4a7c15ULL *
                 (counter.fetch_add(1, std::memory_order_relaxed) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z != 0 ? z : 1;
}

std::string trace_id_hex(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, id);
  return std::string(buf);
}

bool parse_trace_id(const std::string& hex, std::uint64_t* id) {
  if (hex.empty() || hex.size() > 16) return false;
  std::uint64_t v = 0;
  for (char c : hex) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else return false;
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  if (v == 0) return false;
  *id = v;
  return true;
}

namespace detail {

void gate_trace_enabled(bool on) {
  g_span_gate.fetch_add(on ? 1 : -1, std::memory_order_relaxed);
}

int open_span(const char* name, std::int64_t start_us) {
  RequestContext* ctx = t_current;
  if (ctx == nullptr) return -1;
  return detail_access::open(*ctx, name, start_us);
}

void close_span(int index, std::int64_t end_us) {
  RequestContext* ctx = t_current;
  if (ctx == nullptr || index < 0) return;
  detail_access::close(*ctx, index, end_us);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Flight recorder

void FlightRecorder::configure(const Config& cfg) {
  std::lock_guard<std::mutex> lock(mu_);
  cfg_ = cfg;
  cfg_.summary_capacity = std::max(1, cfg_.summary_capacity);
  cfg_.trace_capacity = std::max(1, cfg_.trace_capacity);
  cfg_.slowest = std::max(0, cfg_.slowest);
  cfg_.sample_every = std::max(1, cfg_.sample_every);
  // Re-linearise the summary ring against the (possibly changed) capacity:
  // push/summaries index modulo the capacity and the vector size
  // respectively, so a wrapped ring under a different cap would scramble
  // ordering and a shrunk cap would leave stale slots alive forever.
  // Rebuild oldest-first, trim to the newest `cap` entries, reset the
  // cursor.
  const std::size_t cap = static_cast<std::size_t>(cfg_.summary_capacity);
  if (!ring_.empty() && (ring_full_ || ring_.size() > cap)) {
    std::vector<RequestSummary> linear;
    linear.reserve(std::min(ring_.size(), cap));
    const std::size_t n = ring_.size();
    const std::size_t keep = std::min(n, cap);
    const std::size_t oldest = ring_full_ ? ring_pos_ : 0;
    for (std::size_t i = n - keep; i < n; ++i) {
      linear.push_back(ring_[(oldest + i) % n]);
    }
    ring_.swap(linear);
    ring_full_ = ring_.size() == cap;
    ring_pos_ = ring_.size() % cap;
  }
  evict_excess_locked();
}

FlightRecorder::Config FlightRecorder::config() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cfg_;
}

void FlightRecorder::push_summary_locked(const RequestSummary& summary) {
  const std::size_t cap = static_cast<std::size_t>(cfg_.summary_capacity);
  if (ring_.size() < cap) {
    ring_.push_back(summary);
    ring_pos_ = ring_.size() % cap;
    ring_full_ = ring_.size() == cap;
  } else {
    ring_[ring_pos_] = summary;
    ring_pos_ = (ring_pos_ + 1) % cap;
    ring_full_ = true;
  }
  ++recorded_;
}

int FlightRecorder::classify_locked(const RequestSummary& summary) {
  if (summary.shed || summary.deadline_expired || summary.cancelled ||
      summary.worker_crash) {
    return 2;
  }
  if (cfg_.slowest > 0) {
    // Min-heap of the N slowest walls seen: a new wall that beats the heap
    // minimum is "slow" and ratchets the threshold up.
    const std::size_t n = static_cast<std::size_t>(cfg_.slowest);
    if (slowest_walls_.size() < n) {
      slowest_walls_.push_back(summary.wall_s);
      std::push_heap(slowest_walls_.begin(), slowest_walls_.end(),
                     std::greater<double>());
      return 1;
    }
    if (summary.wall_s > slowest_walls_.front()) {
      std::pop_heap(slowest_walls_.begin(), slowest_walls_.end(),
                    std::greater<double>());
      slowest_walls_.back() = summary.wall_s;
      std::push_heap(slowest_walls_.begin(), slowest_walls_.end(),
                     std::greater<double>());
      return 1;
    }
  }
  if (recorded_ % cfg_.sample_every == 0) return 0;
  return -1;
}

void FlightRecorder::retain_locked(int klass, RequestSummary summary,
                                   std::vector<SpanNode> spans,
                                   std::vector<CounterDelta> counters) {
  Retained r;
  r.klass = klass;
  r.seq = seq_++;
  r.summary = std::move(summary);
  r.spans = std::move(spans);
  r.counters = std::move(counters);
  traces_.push_back(std::move(r));
  evict_excess_locked();
}

void FlightRecorder::evict_excess_locked() {
  while (traces_.size() > static_cast<std::size_t>(cfg_.trace_capacity)) {
    std::size_t victim = 0;
    for (std::size_t i = 1; i < traces_.size(); ++i) {
      const Retained& a = traces_[i];
      const Retained& b = traces_[victim];
      if (a.klass < b.klass || (a.klass == b.klass && a.seq < b.seq)) {
        victim = i;
      }
    }
    traces_.erase(traces_.begin() + static_cast<std::ptrdiff_t>(victim));
    ++evicted_;
  }
}

void FlightRecorder::record(RequestContext&& ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  const int klass = classify_locked(ctx.meta);
  ctx.meta.retained = klass >= 0;
  push_summary_locked(ctx.meta);
  if (klass >= 0) {
    std::vector<SpanNode> spans;
    std::vector<CounterDelta> counters;
    detail_access::take(ctx, &spans, &counters);
    retain_locked(klass, ctx.meta, std::move(spans), std::move(counters));
  }
}

void FlightRecorder::record_summary(const RequestSummary& summary) {
  std::lock_guard<std::mutex> lock(mu_);
  RequestSummary copy = summary;
  const int klass = classify_locked(copy);
  copy.retained = klass >= 0;
  push_summary_locked(copy);
  if (klass >= 0) retain_locked(klass, copy, {}, {});
}

std::vector<RequestSummary> FlightRecorder::summaries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RequestSummary> out;
  out.reserve(ring_.size());
  if (ring_full_) {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(ring_pos_ + i) % ring_.size()]);
    }
  } else {
    out = ring_;
  }
  return out;
}

bool FlightRecorder::has_trace(std::uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Retained& r : traces_) {
    if (r.summary.trace_id == trace_id) return true;
  }
  return false;
}

long long FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

long long FlightRecorder::traces_retained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<long long>(traces_.size());
}

long long FlightRecorder::traces_evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  ring_pos_ = 0;
  ring_full_ = false;
  traces_.clear();
  slowest_walls_.clear();
  recorded_ = 0;
  evicted_ = 0;
  seq_ = 0;
}

namespace {

void append_summary_json(std::string& out, const RequestSummary& s) {
  out += "{\"trace_id\": \"";
  out += trace_id_hex(s.trace_id);
  out += "\", \"case\": \"";
  out += escape(s.case_name);
  out += "\", \"re\": ";
  append_num(out, s.re);
  out += ", \"status\": ";
  append_num(out, s.http_status);
  out += ", \"service_stage\": \"";
  out += escape(s.service_stage);
  out += "\", \"fallback_stage\": \"";
  out += escape(s.fallback_stage);
  out += "\", \"shed\": ";
  append_bool(out, s.shed);
  out += ", \"deadline_expired\": ";
  append_bool(out, s.deadline_expired);
  out += ", \"cancelled\": ";
  append_bool(out, s.cancelled);
  out += ", \"worker_crash\": ";
  append_bool(out, s.worker_crash);
  out += ", \"retained\": ";
  append_bool(out, s.retained);
  out += ", \"wall_ms\": ";
  append_num(out, s.wall_s * 1e3);
  out += ", \"attributed_ms\": ";
  append_num(out, s.attributed_seconds() * 1e3);
  out += ", \"phases_ms\": {";
  for (int p = 0; p < kPhaseCount; ++p) {
    if (p != 0) out += ", ";
    out += "\"";
    out += to_string(static_cast<Phase>(p));
    out += "\": ";
    append_num(out, s.phase_s[p] * 1e3);
  }
  out += "}";
  if (s.retained) {
    out += ", \"trace\": \"/trace/";
    out += trace_id_hex(s.trace_id);
    out += ".json\"";
  }
  out += "}";
}

}  // namespace

std::string FlightRecorder::requests_json(std::size_t limit) const {
  std::vector<RequestSummary> all = summaries();
  long long rec, ret, evc;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rec = recorded_;
    ret = static_cast<long long>(traces_.size());
    evc = evicted_;
  }
  std::string out = "{\"recorded\": ";
  append_num(out, static_cast<double>(rec));
  out += ", \"traces_retained\": ";
  append_num(out, static_cast<double>(ret));
  out += ", \"traces_evicted\": ";
  append_num(out, static_cast<double>(evc));
  out += ", \"requests\": [";
  // Newest first.
  std::size_t count = 0;
  for (std::size_t i = all.size(); i-- > 0 && count < limit; ++count) {
    if (count != 0) out += ",";
    out += "\n  ";
    append_summary_json(out, all[i]);
  }
  out += "\n]}\n";
  return out;
}

bool FlightRecorder::trace_json(std::uint64_t trace_id,
                                std::string* out) const {
  Retained rec;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Retained& r : traces_) {
      if (r.summary.trace_id == trace_id) {
        rec = r;
        found = true;
        break;
      }
    }
  }
  if (!found) return false;
  const RequestSummary& s = rec.summary;
  const std::int64_t wall_us =
      std::max<std::int64_t>(s.end_us - s.start_us,
                             static_cast<std::int64_t>(s.wall_s * 1e6));

  std::vector<std::string> events;
  events.push_back(
      "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
      "\"args\": {\"name\": \"adarnet_serve\"}}");
  events.push_back(
      "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
      "\"tid\": 1, \"args\": {\"name\": \"request " +
      trace_id_hex(s.trace_id) + "\"}}");

  // Root event covering the whole request, carrying outcome + attribution.
  {
    std::string e = "{\"name\": \"request ";
    e += escape(s.case_name);
    e += "\", \"cat\": \"request\", \"ph\": \"X\", \"ts\": ";
    e += std::to_string(s.start_us);
    e += ", \"dur\": ";
    e += std::to_string(std::max<std::int64_t>(wall_us, 1));
    e += ", \"pid\": 1, \"tid\": 1, \"args\": {\"trace_id\": \"";
    e += trace_id_hex(s.trace_id);
    e += "\", \"status\": ";
    append_num(e, s.http_status);
    e += ", \"service_stage\": \"";
    e += escape(s.service_stage);
    e += "\", \"fallback_stage\": \"";
    e += escape(s.fallback_stage);
    e += "\", \"shed\": ";
    append_bool(e, s.shed);
    e += ", \"deadline_expired\": ";
    append_bool(e, s.deadline_expired);
    e += ", \"worker_crash\": ";
    append_bool(e, s.worker_crash);
    for (int p = 0; p < kPhaseCount; ++p) {
      e += ", \"";
      e += to_string(static_cast<Phase>(p));
      e += "_ms\": ";
      append_num(e, s.phase_s[p] * 1e3);
    }
    for (const CounterDelta& c : rec.counters) {
      e += ", \"";
      e += escape(c.name);
      e += "\": ";
      append_num(e, static_cast<double>(c.delta));
    }
    e += "}}";
    events.push_back(std::move(e));
  }

  // Synthetic queue-phase event: no span runs while the request waits in
  // the admission queue, but the wait is the first thing to see in a
  // timeline. start_us is already rebased to admission time (serving
  // charges the queue wait before binding the context), so the queue
  // slice starts at start_us and the first worker span begins where it
  // ends — all inside the root request event.
  const std::int64_t queue_us = static_cast<std::int64_t>(
      s.phase_s[static_cast<int>(Phase::kQueue)] * 1e6);
  if (queue_us > 0) {
    std::string e =
        "{\"name\": \"queue\", \"cat\": \"phase\", \"ph\": \"X\", \"ts\": ";
    e += std::to_string(s.start_us);
    e += ", \"dur\": ";
    e += std::to_string(queue_us);
    e += ", \"pid\": 1, \"tid\": 1}";
    events.push_back(std::move(e));
  }

  for (const SpanNode& n : rec.spans) {
    std::string e = "{\"name\": \"";
    e += escape(n.name);
    e += "\", \"cat\": \"span\", \"ph\": \"X\", \"ts\": ";
    e += std::to_string(n.start_us);
    e += ", \"dur\": ";
    e += std::to_string(std::max<std::int64_t>(n.dur_us, 0));
    e += ", \"pid\": 1, \"tid\": 1}";
    events.push_back(std::move(e));
  }

  std::string doc = "{\"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i != 0) doc += ",";
    doc += "\n  ";
    doc += events[i];
  }
  doc += "\n], \"displayTimeUnit\": \"ms\"}\n";
  *out = doc;
  return true;
}

FlightRecorder& recorder() {
  static FlightRecorder* r = new FlightRecorder();  // leaked: outlives atexit
  return *r;
}

}  // namespace adarnet::util::reqctx
