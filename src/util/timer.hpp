// Wall-clock timers used by the benchmark harnesses and the end-to-end
// pipelines (time-to-convergence accounting in Table 1 / Table 2).
#pragma once

#include <chrono>

namespace adarnet::util {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Minutes elapsed (the unit the paper reports TTC in).
  [[nodiscard]] double minutes() const { return seconds() / 60.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII section timer: adds the enclosed scope's duration to `*sink` on
/// destruction. Used for the solver's per-phase breakdown
/// (SolveStats::phase_seconds); cost is two steady_clock reads per scope.
class ScopedAccum {
 public:
  explicit ScopedAccum(double* sink) : sink_(sink) {}
  ~ScopedAccum() { *sink_ += timer_.seconds(); }
  ScopedAccum(const ScopedAccum&) = delete;
  ScopedAccum& operator=(const ScopedAccum&) = delete;

 private:
  WallTimer timer_;
  double* sink_;
};

/// Accumulating timer: sums the duration of several timed sections.
class AccumTimer {
 public:
  /// Starts a timed section.
  void start() { timer_.reset(); running_ = true; }

  /// Ends the current section and adds it to the total.
  void stop() {
    if (running_) total_ += timer_.seconds();
    running_ = false;
  }

  /// Total accumulated seconds over all completed sections.
  [[nodiscard]] double seconds() const { return total_; }

 private:
  WallTimer timer_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace adarnet::util
