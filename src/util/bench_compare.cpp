#include "util/bench_compare.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace adarnet::util::bench_compare {

namespace {

// Minimal recursive-descent JSON reader over the subset bench/common.hpp
// emits. Numeric leaves are recorded at their '/'-joined path; everything
// else is parsed (so errors are caught) and dropped.
class Flattener {
 public:
  Flattener(const std::string& text, std::map<std::string, double>& out)
      : s_(text), out_(out) {}

  bool run(std::string* error) {
    skip_ws();
    if (!parse_value("")) {
      if (error != nullptr) *error = error_;
      return false;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      if (error != nullptr) *error = at("trailing content");
      return false;
    }
    return true;
  }

 private:
  [[nodiscard]] std::string at(const std::string& what) const {
    return what + " at offset " + std::to_string(pos_);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool fail(const std::string& what) {
    if (error_.empty()) error_ = at(what);
    return false;
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  bool consume(char c) {
    if (peek() != c) return fail(std::string("expected '") + c + "'");
    ++pos_;
    return true;
  }

  static std::string join(const std::string& path, const std::string& key) {
    return path.empty() ? key : path + "/" + key;
  }

  bool parse_value(const std::string& path) {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object(path);
    if (c == '[') return parse_array(path);
    if (c == '"') {
      std::string ignored;
      return parse_string(ignored);
    }
    if (c == 't') return parse_literal("true");
    if (c == 'f') return parse_literal("false");
    if (c == 'n') return parse_literal("null");
    return parse_number(path);
  }

  bool parse_object(const std::string& path) {
    if (!consume('{')) return false;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      if (!parse_value(join(path, key))) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return consume('}');
    }
  }

  bool parse_array(const std::string& path) {
    if (!consume('[')) return false;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    for (std::size_t index = 0;; ++index) {
      if (!parse_value(join(path, std::to_string(index)))) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return consume(']');
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return fail("unterminated escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            // The writers never emit \u outside of control characters;
            // decode to '?' rather than carrying a UTF-16 decoder.
            if (pos_ + 4 > s_.size()) return fail("short \\u escape");
            pos_ += 4;
            out += '?';
            break;
          default: return fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return fail("bad literal");
    pos_ += n;
    return true;
  }

  bool parse_number(const std::string& path) {
    const char* begin = s_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) return fail("expected a value");
    pos_ += static_cast<std::size_t>(end - begin);
    if (!path.empty()) out_[path] = v;
    return true;
  }

  const std::string& s_;
  std::map<std::string, double>& out_;
  std::size_t pos_ = 0;
  std::string error_;
};

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

// Relative change of `cur` vs `base`; exact zero baselines compare by
// presence of any current value.
double rel_change(double base, double cur) {
  if (base == 0.0) return cur == 0.0 ? 0.0 : (cur > 0.0 ? 1.0 : -1.0);
  return (cur - base) / std::abs(base);
}

}  // namespace

bool flatten_json(const std::string& text, std::map<std::string, double>& out,
                  std::string* error) {
  return Flattener(text, out).run(error);
}

bool flatten_json_file(const std::string& path,
                       std::map<std::string, double>& out,
                       std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return flatten_json(buf.str(), out, error);
}

KeyClass classify(const std::string& key) {
  // The metrics snapshot is run-scoped bookkeeping, never a gate target —
  // classify it first so e.g. metrics/gauges/nn.gemm.gflops_per_s (a raw
  // registry dump of the same quantity) does not double-gate.
  if (contains(key, "metrics/")) return KeyClass::kIgnored;
  // Acceptance bits (accept/...) are 0/1 verdicts a bench computes from
  // its own measurements with the machine-dependence already folded in
  // (slack, ratios of same-run timings): they gate exactly, like the
  // analytic flop/byte counts, even under --portable-only.
  if (contains(key, "accept/")) return KeyClass::kPortable;
  // Per-request attribution contract (DESIGN.md §15): the bench emits only
  // machine-independent values under serving.attribution/ (phase count,
  // gate tolerances, 0/1 verdicts), so they gate exactly; its raw
  // millisecond diagnostics live under attribution_ms/ (ignored below).
  if (contains(key, "serving.attribution/")) return KeyClass::kPortable;
  // The autotuner's sweep diagnostics (tune/...: winning tiles, measured
  // ratios, geomean) are machine-specific by construction — the accept
  // bits above are their gateable summary. Classified before the
  // throughput patterns so a tune/.../gflops leaf can never gate.
  if (contains(key, "tune/")) return KeyClass::kIgnored;
  if (ends_with(key, "gflops_per_s") || contains(key, "cells_per_s") ||
      contains(key, "speedup") || ends_with(key, "qps")) {
    return KeyClass::kThroughput;
  }
  if (ends_with(key, "/flops") || ends_with(key, "/bytes") ||
      ends_with(key, "arithmetic_intensity")) {
    return KeyClass::kPortable;
  }
  return KeyClass::kIgnored;
}

Report compare(const std::map<std::string, double>& baseline,
               const std::map<std::string, double>& current,
               const Options& opt) {
  Report report;
  // Portable values are exact models; the slack only forgives the %.9g
  // round-trip through the JSON writer.
  constexpr double kPortableSlack = 1e-6;

  for (const auto& [key, base] : baseline) {
    const KeyClass cls = classify(key);
    if (cls == KeyClass::kIgnored) continue;
    if (cls == KeyClass::kThroughput && opt.portable_only) continue;
    const auto it = current.find(key);
    if (it == current.end()) {
      report.missing.push_back(key);
      report.pass = false;
      continue;
    }
    Delta d;
    d.key = key;
    d.baseline = base;
    d.current = it->second;
    d.rel_change = rel_change(base, it->second);
    if (cls == KeyClass::kThroughput) {
      d.regression = d.rel_change < -opt.tolerance;
    } else {
      d.regression = std::abs(d.rel_change) > kPortableSlack;
    }
    if (d.regression) report.pass = false;
    report.deltas.push_back(d);
  }
  for (const auto& [key, value] : current) {
    (void)value;
    if (classify(key) == KeyClass::kIgnored) continue;
    if (baseline.find(key) == baseline.end()) report.added.push_back(key);
  }
  return report;
}

std::string Report::to_string() const {
  std::string out;
  char line[256];
  int regressions = 0;
  for (const Delta& d : deltas) {
    if (!d.regression) continue;
    ++regressions;
    std::snprintf(line, sizeof(line),
                  "REGRESSION %s: %.6g -> %.6g (%+.1f%%)\n", d.key.c_str(),
                  d.baseline, d.current, 100.0 * d.rel_change);
    out += line;
  }
  for (const std::string& key : missing) {
    out += "MISSING " + key + ": in baseline but not in current report\n";
  }
  for (const std::string& key : added) {
    out += "NEW " + key + ": not in baseline (refresh bench/baselines)\n";
  }
  std::snprintf(line, sizeof(line),
                "%s: %zu keys compared, %d regressions, %zu missing\n",
                pass ? "PASS" : "FAIL", deltas.size(), regressions,
                missing.size());
  out += line;
  return out;
}

}  // namespace adarnet::util::bench_compare
