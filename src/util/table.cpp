#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace adarnet::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << csv_escape(row[c]);
      if (c + 1 < row.size()) out << ',';
    }
    out << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  file << to_csv();
  return static_cast<bool>(file);
}

std::string fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

std::string fmt_speedup(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1fx", value);
  return buf;
}

}  // namespace adarnet::util
