#include "util/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "util/telemetry.hpp"

namespace adarnet::util::metrics {

namespace detail {

bool env_enabled() {
  // Piggy-back the telemetry autostart on the metrics env probe: this
  // initializer runs before main in every binary that touches metrics, so
  // ADARNET_TELEMETRY_PORT works without per-binary wiring (and costs one
  // getenv when unset).
  telemetry::detail::autostart_from_env();
  const char* v = std::getenv("ADARNET_METRICS");
  if (v == nullptr) return true;
  const std::string s(v);
  return !(s == "0" || s == "off" || s == "OFF" || s == "false");
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void Gauge::max(double v) {
  if (!enabled()) return;
  double cur = v_.load(std::memory_order_relaxed);
  while (v > cur &&
         !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

int Histogram::bucket_of(long long v) {
  if (v <= 0) return 0;
  int b = 0;
  for (unsigned long long u = static_cast<unsigned long long>(v); u != 0;
       u >>= 1) {
    ++b;
  }
  return b;  // 1 + floor(log2 v)
}

long long Histogram::bucket_upper(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket >= kBuckets - 1) return std::numeric_limits<long long>::max();
  return (1LL << bucket) - 1;
}

void Histogram::observe(long long v) {
  if (!enabled()) return;
  const int b = bucket_of(v);
  buckets_[static_cast<std::size_t>(b)].fetch_add(1,
                                                  std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(std::max(v, 0LL), std::memory_order_relaxed);
  long long cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Histogram::observe(long long v, std::uint64_t exemplar_id) {
  if (!enabled()) return;
  observe(v);
  if (exemplar_id != 0) {
    const std::size_t b = static_cast<std::size_t>(bucket_of(v));
    exemplar_value_[b].store(std::max(v, 0LL), std::memory_order_relaxed);
    exemplar_id_[b].store(exemplar_id, std::memory_order_relaxed);
  }
}

double Histogram::mean() const {
  const long long n = count();
  return n > 0 ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
}

long long Histogram::quantile(double q) const {
  const long long n = count();
  if (n <= 0) return 0;
  const long long rank = static_cast<long long>(q * static_cast<double>(n));
  long long seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += bucket_count(b);
    if (seen > rank) return bucket_upper(b);
  }
  return max_value();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  for (auto& e : exemplar_id_) e.store(0, std::memory_order_relaxed);
  for (auto& e : exemplar_value_) e.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void TimeSeries::append(double x, double y) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ring_[static_cast<std::size_t>(head_ % ring_.size())] = Point{x, y};
  ++head_;
}

std::uint64_t TimeSeries::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_;
}

std::size_t TimeSeries::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(head_, ring_.size()));
}

std::vector<TimeSeries::Point> TimeSeries::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(head_, ring_.size()));
  std::vector<Point> out;
  out.reserve(n);
  const std::uint64_t first = head_ - n;
  for (std::size_t k = 0; k < n; ++k) {
    out.push_back(ring_[static_cast<std::size_t>((first + k) % ring_.size())]);
  }
  return out;
}

void TimeSeries::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  head_ = 0;
}

namespace {

// Registry: name -> one instrument. Locked only on lookup (call sites
// cache the reference) and on snapshot/reset, never on the update path.
struct Instrument {
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
  std::unique_ptr<TimeSeries> series;
};

std::mutex g_mutex;
std::map<std::string, Instrument>& registry() {
  static std::map<std::string, Instrument>* r =
      new std::map<std::string, Instrument>();  // leaked: outlives atexit users
  return *r;
}

[[noreturn]] void kind_mismatch(const std::string& name) {
  throw std::logic_error("metrics: instrument '" + name +
                         "' already registered with a different kind");
}

}  // namespace

Counter& counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_mutex);
  Instrument& ins = registry()[name];
  if (ins.gauge || ins.histogram || ins.series) kind_mismatch(name);
  if (!ins.counter) ins.counter = std::make_unique<Counter>();
  return *ins.counter;
}

Gauge& gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_mutex);
  Instrument& ins = registry()[name];
  if (ins.counter || ins.histogram || ins.series) kind_mismatch(name);
  if (!ins.gauge) ins.gauge = std::make_unique<Gauge>();
  return *ins.gauge;
}

Histogram& histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_mutex);
  Instrument& ins = registry()[name];
  if (ins.counter || ins.gauge || ins.series) kind_mismatch(name);
  if (!ins.histogram) ins.histogram = std::make_unique<Histogram>();
  return *ins.histogram;
}

TimeSeries& series(const std::string& name, std::size_t capacity) {
  std::lock_guard<std::mutex> lock(g_mutex);
  Instrument& ins = registry()[name];
  if (ins.counter || ins.gauge || ins.histogram) kind_mismatch(name);
  if (!ins.series) ins.series = std::make_unique<TimeSeries>(capacity);
  return *ins.series;
}

void reset() {
  std::lock_guard<std::mutex> lock(g_mutex);
  for (auto& [name, ins] : registry()) {
    if (ins.counter) ins.counter->reset();
    if (ins.gauge) ins.gauge->reset();
    if (ins.histogram) ins.histogram->reset();
    if (ins.series) ins.series->reset();
  }
}

std::vector<SnapshotEntry> snapshot() {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::vector<SnapshotEntry> out;
  out.reserve(registry().size());
  for (const auto& [name, ins] : registry()) {
    if (ins.series) continue;  // history, not a scalar: see series_json()
    SnapshotEntry e;
    e.name = name;
    if (ins.counter) {
      e.kind = SnapshotEntry::Kind::kCounter;
      e.count = ins.counter->value();
    } else if (ins.gauge) {
      e.kind = SnapshotEntry::Kind::kGauge;
      e.value = ins.gauge->value();
    } else if (ins.histogram) {
      e.kind = SnapshotEntry::Kind::kHistogram;
      e.count = ins.histogram->count();
      e.sum = ins.histogram->sum();
      e.value = ins.histogram->mean();
      e.max = ins.histogram->max_value();
      e.p50 = ins.histogram->quantile(0.5);
      e.p95 = ins.histogram->quantile(0.95);
    }
    out.push_back(std::move(e));
  }
  return out;  // std::map iteration: already name-sorted
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string snapshot_json() {
  const auto entries = snapshot();
  std::string counters, gauges, histograms;
  for (const SnapshotEntry& e : entries) {
    std::string key = "\"";
    key += json_escape(e.name);
    key += "\": ";
    switch (e.kind) {
      case SnapshotEntry::Kind::kCounter:
        if (!counters.empty()) counters += ", ";
        counters += key + std::to_string(e.count);
        break;
      case SnapshotEntry::Kind::kGauge:
        if (!gauges.empty()) gauges += ", ";
        gauges += key + number(e.value);
        break;
      case SnapshotEntry::Kind::kHistogram:
        if (!histograms.empty()) histograms += ", ";
        histograms += key + "{\"count\": " + std::to_string(e.count) +
                      ", \"sum\": " + std::to_string(e.sum) +
                      ", \"mean\": " + number(e.value) +
                      ", \"max\": " + std::to_string(e.max) +
                      ", \"p50\": " + std::to_string(e.p50) +
                      ", \"p95\": " + std::to_string(e.p95) + "}";
        break;
    }
  }
  return "{\"counters\": {" + counters + "}, \"gauges\": {" + gauges +
         "}, \"histograms\": {" + histograms + "}}";
}

std::string series_json() {
  // Collect name -> (capacity, total, points) under the registry lock but
  // snapshot each ring via its own mutex, so appends stall for one point
  // copy at most.
  std::vector<std::pair<std::string, const TimeSeries*>> all;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    for (const auto& [name, ins] : registry()) {
      if (ins.series) all.emplace_back(name, ins.series.get());
    }
  }
  std::string out = "{\"series\": {";
  bool first_series = true;
  for (const auto& [name, ts] : all) {
    if (!first_series) out += ", ";
    first_series = false;
    out += '"';
    out += json_escape(name);
    out += "\": {\"capacity\": ";
    out += std::to_string(ts->capacity());
    out += ", \"total\": ";
    out += std::to_string(ts->total());
    out += ", \"points\": [";
    bool first = true;
    for (const TimeSeries::Point& p : ts->snapshot()) {
      if (!first) out += ", ";
      first = false;
      out += '[';
      out += number(p.x);
      out += ", ";
      out += number(p.y);
      out += ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:] only; everything else
// (the dots of the internal scheme) maps to '_'.
std::string prometheus_name(const std::string& name) {
  std::string out = "adarnet_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prometheus_label_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string prometheus_text(bool openmetrics) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::string out;
  for (const auto& [name, ins] : registry()) {
    if (ins.series) continue;  // exposed via /series.json only
    const std::string pname = prometheus_name(name);
    const std::string label =
        "{name=\"" + prometheus_label_escape(name) + "\"}";
    if (ins.counter) {
      out += "# TYPE " + pname + " counter\n";
      out += pname + label + " " + std::to_string(ins.counter->value()) + "\n";
    } else if (ins.gauge) {
      out += "# TYPE " + pname + " gauge\n";
      out += pname + label + " " + number(ins.gauge->value()) + "\n";
    } else if (ins.histogram) {
      const Histogram& h = *ins.histogram;
      out += "# TYPE " + pname + " histogram\n";
      long long cumulative = 0;
      for (int b = 0; b < Histogram::kBuckets; ++b) {
        const long long in_bucket = h.bucket_count(b);
        if (in_bucket == 0) continue;
        cumulative += in_bucket;
        out += pname + "_bucket{name=\"" + prometheus_label_escape(name) +
               "\",le=\"" + std::to_string(Histogram::bucket_upper(b)) +
               "\"} " + std::to_string(cumulative);
        // OpenMetrics exemplar: ties this bucket to a concrete request in
        // the flight recorder (GET /trace/<id>.json). Exemplars are
        // illegal in the classic 0.0.4 text format — a '#' after the
        // sample value aborts a standard Prometheus scrape — so they are
        // emitted only when the scraper negotiated OpenMetrics.
        const std::uint64_t ex = openmetrics ? h.exemplar_id(b) : 0;
        if (ex != 0) {
          char hex[17];
          std::snprintf(hex, sizeof(hex), "%016llx",
                        static_cast<unsigned long long>(ex));
          out += " # {trace_id=\"";
          out += hex;
          out += "\"} " + std::to_string(h.exemplar_value(b));
        }
        out += "\n";
      }
      out += pname + "_bucket{name=\"" + prometheus_label_escape(name) +
             "\",le=\"+Inf\"} " + std::to_string(h.count()) + "\n";
      out += pname + "_sum" + label + " " + std::to_string(h.sum()) + "\n";
      out += pname + "_count" + label + " " + std::to_string(h.count()) +
             "\n";
    }
  }
  if (openmetrics) out += "# EOF\n";
  return out;
}

ScopedNs::ScopedNs(Counter& c) : c_(enabled() ? &c : nullptr) {
  if (c_ != nullptr) {
    start_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count();
  }
}

ScopedNs::~ScopedNs() {
  if (c_ != nullptr) {
    const std::int64_t now =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    c_->add(now - start_ns_);
  }
}

}  // namespace adarnet::util::metrics
