#include "util/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace adarnet::util::metrics {

namespace detail {

bool env_enabled() {
  const char* v = std::getenv("ADARNET_METRICS");
  if (v == nullptr) return true;
  const std::string s(v);
  return !(s == "0" || s == "off" || s == "OFF" || s == "false");
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void Gauge::max(double v) {
  if (!enabled()) return;
  double cur = v_.load(std::memory_order_relaxed);
  while (v > cur &&
         !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

int Histogram::bucket_of(long long v) {
  if (v <= 0) return 0;
  int b = 0;
  for (unsigned long long u = static_cast<unsigned long long>(v); u != 0;
       u >>= 1) {
    ++b;
  }
  return b;  // 1 + floor(log2 v)
}

long long Histogram::bucket_upper(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket >= kBuckets - 1) return std::numeric_limits<long long>::max();
  return (1LL << bucket) - 1;
}

void Histogram::observe(long long v) {
  if (!enabled()) return;
  const int b = bucket_of(v);
  buckets_[static_cast<std::size_t>(b)].fetch_add(1,
                                                  std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(std::max(v, 0LL), std::memory_order_relaxed);
  long long cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  const long long n = count();
  return n > 0 ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
}

long long Histogram::quantile(double q) const {
  const long long n = count();
  if (n <= 0) return 0;
  const long long rank = static_cast<long long>(q * static_cast<double>(n));
  long long seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += bucket_count(b);
    if (seen > rank) return bucket_upper(b);
  }
  return max_value();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

namespace {

// Registry: name -> one instrument. Locked only on lookup (call sites
// cache the reference) and on snapshot/reset, never on the update path.
struct Instrument {
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

std::mutex g_mutex;
std::map<std::string, Instrument>& registry() {
  static std::map<std::string, Instrument>* r =
      new std::map<std::string, Instrument>();  // leaked: outlives atexit users
  return *r;
}

[[noreturn]] void kind_mismatch(const std::string& name) {
  throw std::logic_error("metrics: instrument '" + name +
                         "' already registered with a different kind");
}

}  // namespace

Counter& counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_mutex);
  Instrument& ins = registry()[name];
  if (ins.gauge || ins.histogram) kind_mismatch(name);
  if (!ins.counter) ins.counter = std::make_unique<Counter>();
  return *ins.counter;
}

Gauge& gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_mutex);
  Instrument& ins = registry()[name];
  if (ins.counter || ins.histogram) kind_mismatch(name);
  if (!ins.gauge) ins.gauge = std::make_unique<Gauge>();
  return *ins.gauge;
}

Histogram& histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_mutex);
  Instrument& ins = registry()[name];
  if (ins.counter || ins.gauge) kind_mismatch(name);
  if (!ins.histogram) ins.histogram = std::make_unique<Histogram>();
  return *ins.histogram;
}

void reset() {
  std::lock_guard<std::mutex> lock(g_mutex);
  for (auto& [name, ins] : registry()) {
    if (ins.counter) ins.counter->reset();
    if (ins.gauge) ins.gauge->reset();
    if (ins.histogram) ins.histogram->reset();
  }
}

std::vector<SnapshotEntry> snapshot() {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::vector<SnapshotEntry> out;
  out.reserve(registry().size());
  for (const auto& [name, ins] : registry()) {
    SnapshotEntry e;
    e.name = name;
    if (ins.counter) {
      e.kind = SnapshotEntry::Kind::kCounter;
      e.count = ins.counter->value();
    } else if (ins.gauge) {
      e.kind = SnapshotEntry::Kind::kGauge;
      e.value = ins.gauge->value();
    } else if (ins.histogram) {
      e.kind = SnapshotEntry::Kind::kHistogram;
      e.count = ins.histogram->count();
      e.sum = ins.histogram->sum();
      e.value = ins.histogram->mean();
      e.max = ins.histogram->max_value();
      e.p50 = ins.histogram->quantile(0.5);
      e.p95 = ins.histogram->quantile(0.95);
    }
    out.push_back(std::move(e));
  }
  return out;  // std::map iteration: already name-sorted
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string snapshot_json() {
  const auto entries = snapshot();
  std::string counters, gauges, histograms;
  for (const SnapshotEntry& e : entries) {
    std::string key = "\"";
    key += json_escape(e.name);
    key += "\": ";
    switch (e.kind) {
      case SnapshotEntry::Kind::kCounter:
        if (!counters.empty()) counters += ", ";
        counters += key + std::to_string(e.count);
        break;
      case SnapshotEntry::Kind::kGauge:
        if (!gauges.empty()) gauges += ", ";
        gauges += key + number(e.value);
        break;
      case SnapshotEntry::Kind::kHistogram:
        if (!histograms.empty()) histograms += ", ";
        histograms += key + "{\"count\": " + std::to_string(e.count) +
                      ", \"sum\": " + std::to_string(e.sum) +
                      ", \"mean\": " + number(e.value) +
                      ", \"max\": " + std::to_string(e.max) +
                      ", \"p50\": " + std::to_string(e.p50) +
                      ", \"p95\": " + std::to_string(e.p95) + "}";
        break;
    }
  }
  return "{\"counters\": {" + counters + "}, \"gauges\": {" + gauges +
         "}, \"histograms\": {" + histograms + "}}";
}

ScopedNs::ScopedNs(Counter& c) : c_(enabled() ? &c : nullptr) {
  if (c_ != nullptr) {
    start_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count();
  }
}

ScopedNs::~ScopedNs() {
  if (c_ != nullptr) {
    const std::int64_t now =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    c_->add(now - start_ns_);
  }
}

}  // namespace adarnet::util::metrics
