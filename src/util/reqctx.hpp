// Request-scoped observability context + tail-sampling flight recorder
// (DESIGN.md §15).
//
// A RequestContext carries a 64-bit trace id, a span tree, per-phase wall
// attribution, and per-request counter deltas for one serving request. The
// serving layer creates one at admission and binds it to the worker thread
// with a reqctx::Scope; every trace::Span constructed on that thread while
// the scope is live additionally lands in the context's span tree, and the
// solver / inference layers publish their phase timings into it, so a
// completed request can be explained in isolation even when many requests
// ran concurrently.
//
// Disarmed cost: trace::Span consults a single process-wide relaxed atomic
// (the span gate, armed while tracing is enabled OR any thread has a bound
// context) — the same discipline as ADARNET_METRICS=0. A context is only
// ever touched from the thread it is bound to; the flight recorder takes a
// mutex only at request completion.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace adarnet::util::reqctx {

/// Wall-attribution phases for one request. kQueue..kRespond partition the
/// request wall (DESIGN.md §15): the two *Glue phases are measured
/// remainders (solve wall minus timed sub-phases), not guesses, so the sum
/// over phases tracks the measured request wall to within timer noise.
enum class Phase : int {
  kQueue = 0,     ///< accept → worker pop
  kRead,          ///< socket read of the HTTP request
  kParse,         ///< request parse + case-spec construction
  kInfer,         ///< AdarNet forward pass(es)
  kMomentum,      ///< solver momentum phase (summed over solves)
  kRhieChow,      ///< solver Rhie–Chow interpolation
  kPressure,      ///< solver pressure correction
  kSa,            ///< Spalart–Allmaras transport
  kGhosts,        ///< ghost/halo exchange
  kSolverGlue,    ///< per-solve remainder (workspace, residual eval, …)
  kPipelineGlue,  ///< pipeline remainder (composite build, norm stats, …)
  kRespond,       ///< summary/cache/JSON build + socket write
  kCount
};
constexpr int kPhaseCount = static_cast<int>(Phase::kCount);

/// Stable lower_snake name for JSON keys ("queue", "momentum", ...).
const char* to_string(Phase p);

/// One node of a request's span tree. `name` must be a string literal (the
/// same contract as trace::Span). dur_us is -1 while the span is open.
struct SpanNode {
  const char* name;
  std::int64_t start_us;
  std::int64_t dur_us;
  int parent;  ///< index into the tree, -1 for roots
};

/// Named per-request counter delta (solver iterations, MG cycles, ...).
struct CounterDelta {
  const char* name;
  long long delta;
};

/// Request outcome + attribution summary kept for every recorded request
/// (the flight recorder's ring of these backs GET /requests.json).
struct RequestSummary {
  std::uint64_t trace_id = 0;
  std::string case_name = "-";  ///< "-" until the request is parsed
  double re = 0.0;
  int http_status = 0;
  std::string service_stage;   ///< serving::to_string(ServiceStage)
  std::string fallback_stage;  ///< pipeline fallback ladder outcome
  bool shed = false;
  bool deadline_expired = false;  ///< produced after its deadline passed
  bool cancelled = false;
  bool worker_crash = false;
  bool retained = false;       ///< full span tree kept (GET /trace/<id>.json)
  double wall_s = 0.0;         ///< admission → response written
  double phase_s[kPhaseCount] = {};
  std::int64_t start_us = 0;   ///< trace::detail::now_us() clock
  std::int64_t end_us = 0;

  double attributed_seconds() const {
    double s = 0.0;
    for (double p : phase_s) s += p;
    return s;
  }
};

/// Per-request observability state. Thread-confined: only the thread the
/// context is bound to (via Scope) may touch it; completion hands it to the
/// flight recorder by value under the recorder lock.
class RequestContext {
 public:
  explicit RequestContext(std::uint64_t trace_id);

  std::uint64_t trace_id() const { return meta.trace_id; }

  /// Adds wall seconds to a phase accumulator.
  void add_phase(Phase p, double seconds) {
    if (seconds > 0.0) meta.phase_s[static_cast<int>(p)] += seconds;
  }
  double phase_seconds(Phase p) const {
    return meta.phase_s[static_cast<int>(p)];
  }
  /// Sum over all phase accumulators (used for measured-remainder glue).
  double attributed_seconds() const { return meta.attributed_seconds(); }

  /// Aggregates a named counter delta. `name` must be a string literal.
  void count(const char* name, long long delta);

  const std::vector<SpanNode>& spans() const { return spans_; }
  const std::vector<CounterDelta>& counters() const { return counters_; }
  /// Spans dropped once the per-request tree cap was reached.
  long long dropped_spans() const { return dropped_spans_; }

  /// Closes any still-open spans at `end_us` (crash/exception unwind can
  /// skip destructors on the trace path; the tree must still render).
  void finalize(std::int64_t end_us);

  /// Outcome metadata; filled in by the serving layer as the request moves
  /// through admission → parse → solve → respond.
  RequestSummary meta;

 private:
  friend struct detail_access;
  static constexpr std::size_t kMaxSpans = 1024;
  std::vector<SpanNode> spans_;
  std::vector<CounterDelta> counters_;
  int open_ = -1;  ///< innermost open span, -1 at root
  long long dropped_spans_ = 0;
};

/// The context bound to the calling thread, or nullptr.
RequestContext* current();

/// RAII binding of a context to the calling thread. Nesting restores the
/// previous binding; binding nullptr temporarily unbinds (used by code that
/// must not attribute, e.g. background flushers).
class Scope {
 public:
  explicit Scope(RequestContext* ctx);
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  RequestContext* prev_;
};

/// Process-unique nonzero trace id (splitmix64 over a seeded counter).
std::uint64_t next_trace_id();
/// 16-char lowercase hex rendering / strict parse of a trace id.
std::string trace_id_hex(std::uint64_t id);
bool parse_trace_id(const std::string& hex, std::uint64_t* id);

namespace detail {
/// Span gate: nonzero while global tracing is enabled or any thread has a
/// bound context. trace::Span's disarmed path is exactly one relaxed load
/// of this. Zero-initialised before any dynamic initialiser runs.
inline constinit std::atomic<int> g_span_gate{0};

/// Called by util::trace when the global enable flag flips.
void gate_trace_enabled(bool on);

/// Opens/closes a node in the calling thread's bound context. open_span
/// returns the node index, or -1 when no context is bound (or the tree is
/// full). Only called from trace::Span behind the span gate.
int open_span(const char* name, std::int64_t start_us);
void close_span(int index, std::int64_t end_us);
}  // namespace detail

/// True while any span could need recording (tracing enabled or a context
/// bound somewhere). One relaxed load; this is the disarmed fast path.
inline bool armed() {
  return detail::g_span_gate.load(std::memory_order_relaxed) != 0;
}

// ---------------------------------------------------------------------------
// Flight recorder

/// Bounded tail-sampling store of completed requests. Every recorded
/// request contributes a RequestSummary to a bounded ring (newest first in
/// GET /requests.json). Full span trees are retained for the interesting
/// tail only — every shed, deadline-expired, cancelled, or worker-crash
/// request, the slowest-N seen so far, and a 1-in-K head sample — up to
/// `trace_capacity`, evicting least-interesting-oldest-first (DESIGN.md
/// §15). GET /trace/<id>.json renders a retained tree as a chrome://tracing
/// document.
class FlightRecorder {
 public:
  struct Config {
    int summary_capacity = 512;  ///< recent-summaries ring
    int trace_capacity = 256;    ///< retained full span trees
    int slowest = 16;            ///< slowest-N always retained
    int sample_every = 16;       ///< head-sample 1 in K uninteresting
  };

  void configure(const Config& cfg);
  Config config() const;

  /// Records a completed (or shed) request. Moves the span tree out of the
  /// context; the context is dead afterwards.
  void record(RequestContext&& ctx);
  /// Summary-only record for requests that never got a context (shed at
  /// admission).
  void record_summary(const RequestSummary& summary);

  /// JSON for GET /requests.json: newest-first summaries + totals.
  std::string requests_json(std::size_t limit = 128) const;
  /// JSON for GET /trace/<id>.json; false when the id was never recorded
  /// or its tree was not retained/evicted.
  bool trace_json(std::uint64_t trace_id, std::string* out) const;

  /// Introspection (tests, bench).
  std::vector<RequestSummary> summaries() const;
  bool has_trace(std::uint64_t trace_id) const;
  long long recorded() const;
  long long traces_retained() const;
  long long traces_evicted() const;
  void clear();

 private:
  struct Retained {
    // Retention class: 2 = interesting (shed/deadline/cancel/crash),
    // 1 = slowest-N, 0 = head sample. Eviction removes the lowest class,
    // oldest first.
    int klass = 0;
    std::uint64_t seq = 0;
    RequestSummary summary;
    std::vector<SpanNode> spans;
    std::vector<CounterDelta> counters;
  };

  void push_summary_locked(const RequestSummary& summary);
  void retain_locked(int klass, RequestSummary summary,
                     std::vector<SpanNode> spans,
                     std::vector<CounterDelta> counters);
  void evict_excess_locked();
  int classify_locked(const RequestSummary& summary);

  mutable std::mutex mu_;
  Config cfg_;
  std::vector<RequestSummary> ring_;  ///< circular, ring_pos_ = next slot
  std::size_t ring_pos_ = 0;
  bool ring_full_ = false;
  std::vector<Retained> traces_;
  std::vector<double> slowest_walls_;  ///< min-heap of the N slowest walls
  std::uint64_t seq_ = 0;
  long long recorded_ = 0;
  long long evicted_ = 0;
};

/// The process-wide recorder behind the telemetry endpoints.
FlightRecorder& recorder();

}  // namespace adarnet::util::reqctx
