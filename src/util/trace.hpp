// RAII tracing spans emitting chrome://tracing JSON.
//
// Scope a region with `trace::Span span("infer.scorer");` — when tracing
// is enabled the span records one complete ("ph": "X") event; when
// disabled (the default) construction and destruction are a single relaxed
// atomic load each, so spans may sit on warm paths (not inner loops).
//
// Enabling: set ADARNET_TRACE in the environment to the output path (or to
// "1" for the default "adarnet_trace.json"); the file is written at
// process exit and by any explicit flush(). Tests and tools can instead
// call set_path(), which enables tracing programmatically.
//
// Span names reuse the metric naming scheme (DESIGN.md §9), so a trace
// timeline and a metrics snapshot cross-reference by name. Events carry
// the emitting thread id; nested spans on one thread render as a stack.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace adarnet::util::trace {

namespace detail {
/// Reads ADARNET_TRACE once at static-init time (sets the output path).
bool env_enabled();
inline std::atomic<bool> g_enabled{env_enabled()};

/// Records one complete event (slow path; locks the event buffer).
void record(const char* name, std::int64_t ts_us, std::int64_t dur_us);

/// Microseconds since an arbitrary process-stable epoch.
std::int64_t now_us();
}  // namespace detail

/// True while spans are being recorded.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Enables tracing to `path` (empty disables). Overrides ADARNET_TRACE.
void set_path(const std::string& path);

/// The current output path ("" when tracing is disabled).
std::string path();

/// Writes all recorded events to the output path as a chrome://tracing
/// JSON document ({"traceEvents": [...]}) and returns whether the file was
/// written. Idempotent: keeps the events, rewrites the whole file. Runs
/// automatically at process exit when tracing is enabled.
bool flush();

/// Drops all recorded events (tests).
void clear();

/// Number of events recorded so far.
std::size_t event_count();

/// RAII span: one chrome://tracing complete event covering the enclosing
/// scope. `name` must outlive the span (string literals in practice).
class Span {
 public:
  explicit Span(const char* name)
      : name_(enabled() ? name : nullptr),
        start_us_(name_ != nullptr ? detail::now_us() : 0) {}
  ~Span() {
    if (name_ != nullptr) {
      detail::record(name_, start_us_, detail::now_us() - start_us_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::int64_t start_us_;
};

}  // namespace adarnet::util::trace
