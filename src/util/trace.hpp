// RAII tracing spans emitting chrome://tracing JSON.
//
// Scope a region with `trace::Span span("infer.scorer");` — when tracing
// is enabled the span records one complete ("ph": "X") event; when
// disabled (the default) construction and destruction are a single relaxed
// atomic load each, so spans may sit on warm paths (not inner loops).
//
// Enabling: set ADARNET_TRACE in the environment to the output path (or to
// "1" for the default "adarnet_trace.json"); the file is written at
// process exit and by any explicit flush(). Tests and tools can instead
// call set_path(), which enables tracing programmatically.
//
// Span names reuse the metric naming scheme (DESIGN.md §9), so a trace
// timeline and a metrics snapshot cross-reference by name. Events carry
// the emitting thread id; nested spans on one thread render as a stack.
//
// Request attribution (DESIGN.md §15): when a reqctx::RequestContext is
// bound to the constructing thread, the span additionally lands in that
// request's span tree — so one serving request can be rendered in
// isolation via GET /trace/<id>.json even when the global timeline is
// disabled. Both sinks share a single relaxed-load gate (reqctx::armed());
// a fully disarmed process pays exactly one relaxed atomic load per span.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "util/reqctx.hpp"

namespace adarnet::util::trace {

namespace detail {
/// Reads ADARNET_TRACE once at static-init time (sets the output path).
bool env_enabled();
inline std::atomic<bool> g_enabled{env_enabled()};

/// Records one complete event (slow path; locks the event buffer).
void record(const char* name, std::int64_t ts_us, std::int64_t dur_us);

/// Microseconds since an arbitrary process-stable epoch.
std::int64_t now_us();
}  // namespace detail

/// True while spans are being recorded.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Enables tracing to `path` (empty disables). Overrides ADARNET_TRACE.
void set_path(const std::string& path);

/// The current output path ("" when tracing is disabled).
std::string path();

/// Writes all recorded events to the output path as a chrome://tracing
/// JSON document ({"traceEvents": [...]}) and returns whether the file was
/// written. Idempotent: keeps the events, rewrites the whole file. Runs
/// automatically at process exit when tracing is enabled.
bool flush();

/// Drops all recorded events (tests).
void clear();

/// Number of events recorded so far.
std::size_t event_count();

/// Caps the global event buffer: once `n` events are held, further spans
/// are dropped (counted in `trace.dropped_events` and dropped_count())
/// instead of growing the buffer for the life of a long-running server.
/// 0 means unbounded. Defaults to ADARNET_TRACE_MAX_EVENTS (a number,
/// "0", or "unlimited"; an unparseable value fails closed to the 1M
/// default with a warning — a typo must not unbound the buffer).
void set_max_events(std::size_t n);
std::size_t max_events();

/// Events dropped at the cap since process start (clear() resets it).
long long dropped_count();

/// RAII span: one chrome://tracing complete event covering the enclosing
/// scope. `name` must outlive the span (string literals in practice).
class Span {
 public:
  explicit Span(const char* name) {
    if (!reqctx::armed()) return;  // disarmed: this one relaxed load
    name_ = name;
    start_us_ = detail::now_us();
    node_ = reqctx::detail::open_span(name, start_us_);
  }
  ~Span() {
    if (name_ == nullptr) return;
    const std::int64_t end_us = detail::now_us();
    if (enabled()) detail::record(name_, start_us_, end_us - start_us_);
    if (node_ >= 0) reqctx::detail::close_span(node_, end_us);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  std::int64_t start_us_ = 0;
  int node_ = -1;  ///< index in the bound request's span tree, -1 if none
};

}  // namespace adarnet::util::trace
