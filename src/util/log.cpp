#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace adarnet::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::once_flag g_env_once;

// JSON-lines sink state, guarded by the emit mutex (records are rare
// relative to the metrics hot paths; one lock per record is fine).
std::mutex& emit_mutex() {
  static std::mutex* mu = new std::mutex();  // leaked: outlives atexit users
  return *mu;
}

struct JsonSink {
  std::string path;
  std::FILE* file = nullptr;  // lazily opened in append mode
};
JsonSink& json_sink() {
  static JsonSink* s = new JsonSink();
  return *s;
}

const char* level_name_lower(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void init_from_env() {
  if (const char* env = std::getenv("ADARNET_LOG_LEVEL")) {
    g_level.store(parse_log_level(env));
  }
  if (const char* env = std::getenv("ADARNET_LOG_JSON")) {
    std::lock_guard<std::mutex> lock(emit_mutex());
    json_sink().path = env;
  }
}

}  // namespace

LogLevel log_level() {
  std::call_once(g_env_once, init_from_env);
  return g_level.load();
}

void set_log_level(LogLevel level) {
  std::call_once(g_env_once, init_from_env);
  g_level.store(level);
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

void set_json_log_path(const std::string& path) {
  std::call_once(g_env_once, init_from_env);
  std::lock_guard<std::mutex> lock(emit_mutex());
  JsonSink& sink = json_sink();
  if (sink.file != nullptr && sink.path != path) {
    std::fclose(sink.file);
    sink.file = nullptr;
  }
  sink.path = path;
}

std::string json_log_path() {
  std::call_once(g_env_once, init_from_env);
  std::lock_guard<std::mutex> lock(emit_mutex());
  return json_sink().path;
}

namespace detail {

void emit(LogLevel level, const std::string& message) {
  // Format the whole record first, then write it with ONE fwrite under the
  // lock: stderr is unbuffered by default, so a multi-part fprintf from
  // concurrent OpenMP regions interleaves mid-line without this.
  std::string line = "[adarnet ";
  char head[8];
  std::snprintf(head, sizeof(head), "%-5s", level_name(level));
  line += head;
  line += "] ";
  line += message;
  line += '\n';

  std::lock_guard<std::mutex> lock(emit_mutex());
  std::fwrite(line.data(), 1, line.size(), stderr);

  JsonSink& sink = json_sink();
  if (sink.path.empty()) return;
  if (sink.file == nullptr) {
    sink.file = std::fopen(sink.path.c_str(), "a");
    if (sink.file == nullptr) {
      sink.path.clear();  // unusable path: disable instead of retrying
      return;
    }
  }
  const long long ts_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  const std::string record = "{\"ts_us\": " + std::to_string(ts_us) +
                             ", \"level\": \"" + level_name_lower(level) +
                             "\", \"msg\": \"" + json_escape(message) +
                             "\"}\n";
  std::fwrite(record.data(), 1, record.size(), sink.file);
  std::fflush(sink.file);
}

}  // namespace detail

}  // namespace adarnet::util
