#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace adarnet::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::once_flag g_env_once;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void init_from_env() {
  if (const char* env = std::getenv("ADARNET_LOG_LEVEL")) {
    g_level.store(parse_log_level(env));
  }
}

}  // namespace

LogLevel log_level() {
  std::call_once(g_env_once, init_from_env);
  return g_level.load();
}

void set_log_level(LogLevel level) {
  std::call_once(g_env_once, init_from_env);
  g_level.store(level);
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

namespace detail {

void emit(LogLevel level, const std::string& message) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[adarnet %-5s] %s\n", level_name(level),
               message.c_str());
}

}  // namespace detail

}  // namespace adarnet::util
