#include "util/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include "util/metrics.hpp"

namespace adarnet::util::trace {

namespace {

std::size_t env_max_events() {
  constexpr std::size_t kDefault = 1u << 20;  // ~24 MB of events
  const char* v = std::getenv("ADARNET_TRACE_MAX_EVENTS");
  if (v == nullptr || v[0] == '\0') return kDefault;
  // Unbounded is an explicit opt-in ("unlimited" or a literal "0"), never
  // the result of a typo: an unparseable value fails closed to the default
  // so a long-running server keeps its memory bound.
  if (std::strcmp(v, "unlimited") == 0) return 0;
  char* end = nullptr;
  const long long n = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || n < 0) {
    std::fprintf(stderr,
                 "adarnet: unparseable ADARNET_TRACE_MAX_EVENTS=\"%s\"; "
                 "using default %zu\n",
                 v, kDefault);
    return kDefault;
  }
  return static_cast<std::size_t>(n);  // 0 = explicit unbounded
}

std::atomic<std::size_t> g_max_events{env_max_events()};
std::atomic<long long> g_dropped{0};

struct Event {
  const char* name;
  std::int64_t ts_us;
  std::int64_t dur_us;
  std::uint32_t tid;
};

// Buffer + path, locked on record/flush only (never on the disabled path).
std::mutex g_mutex;
std::vector<Event>& events() {
  static std::vector<Event>* v = new std::vector<Event>();  // outlives atexit
  return *v;
}
std::string& out_path() {
  static std::string* p = new std::string();
  return *p;
}

std::uint32_t thread_tid() {
  return static_cast<std::uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffffff);
}

void flush_at_exit() { flush(); }

void register_atexit() {
  static bool once = [] {
    std::atexit(flush_at_exit);
    return true;
  }();
  (void)once;
}

std::string escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
  return out;
}

}  // namespace

namespace detail {

bool env_enabled() {
  const char* v = std::getenv("ADARNET_TRACE");
  if (v == nullptr || v[0] == '\0' ||
      (v[0] == '0' && v[1] == '\0')) {
    return false;
  }
  out_path() = (v[0] == '1' && v[1] == '\0') ? "adarnet_trace.json" : v;
  register_atexit();  // a trace-enabled run always produces the file
  reqctx::detail::gate_trace_enabled(true);  // arm the shared span gate
  return true;
}

std::int64_t now_us() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

void record(const char* name, std::int64_t ts_us, std::int64_t dur_us) {
  const std::uint32_t tid = thread_tid();
  const std::size_t cap = g_max_events.load(std::memory_order_relaxed);
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    if (cap != 0 && events().size() >= cap) {
      dropped = true;
    } else {
      events().push_back(Event{name, ts_us, dur_us, tid});
      register_atexit();
    }
  }
  if (dropped) {
    // Counted outside g_mutex: metrics has its own registry lock and must
    // never nest inside the trace buffer lock.
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    static metrics::Counter& drops = metrics::counter("trace.dropped_events");
    drops.add(1);
  }
}

}  // namespace detail

void set_path(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    out_path() = path;
  }
  const bool on = !path.empty();
  const bool was =
      detail::g_enabled.exchange(on, std::memory_order_relaxed);
  if (on != was) reqctx::detail::gate_trace_enabled(on);
  if (on) register_atexit();
}

std::string path() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return out_path();
}

bool flush() {
  // Snapshot the buffer + path under the record lock, then serialise and
  // write OUTSIDE it: holding g_mutex across file I/O stalled every span
  // completion for the duration of the write, and a flush racing process
  // exit could leave a torn document (truncated events, missing closing
  // "]"). The document is written to "<path>.tmp" and renamed into place,
  // so a reader — or a concurrent flush — only ever sees a complete file.
  std::string path;
  std::vector<Event> snapshot;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    if (out_path().empty()) return false;
    path = out_path();
    snapshot = events();
  }

  std::string doc = "{\"traceEvents\": [";
  bool first = true;
  for (const Event& e : snapshot) {
    if (!first) doc += ",";
    first = false;
    doc += "\n  {\"name\": \"";
    doc += escape(e.name);
    doc += "\", \"cat\": \"adarnet\", \"ph\": \"X\", \"ts\": ";
    doc += std::to_string(e.ts_us);
    doc += ", \"dur\": ";
    doc += std::to_string(e.dur_us);
    doc += ", \"pid\": 1, \"tid\": ";
    doc += std::to_string(e.tid);
    doc += "}";
  }
  doc += "\n], \"displayTimeUnit\": \"ms\"}\n";

  // One flush writes at a time: two concurrent flushes sharing a .tmp file
  // would interleave just like the original race.
  static std::mutex* write_mutex = new std::mutex();
  std::lock_guard<std::mutex> write_lock(*write_mutex);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << doc;
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

void clear() {
  std::lock_guard<std::mutex> lock(g_mutex);
  events().clear();
  g_dropped.store(0, std::memory_order_relaxed);
}

std::size_t event_count() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return events().size();
}

void set_max_events(std::size_t n) {
  g_max_events.store(n, std::memory_order_relaxed);
}

std::size_t max_events() {
  return g_max_events.load(std::memory_order_relaxed);
}

long long dropped_count() {
  return g_dropped.load(std::memory_order_relaxed);
}

}  // namespace adarnet::util::trace
