#include "util/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

namespace adarnet::util::trace {

namespace {

struct Event {
  const char* name;
  std::int64_t ts_us;
  std::int64_t dur_us;
  std::uint32_t tid;
};

// Buffer + path, locked on record/flush only (never on the disabled path).
std::mutex g_mutex;
std::vector<Event>& events() {
  static std::vector<Event>* v = new std::vector<Event>();  // outlives atexit
  return *v;
}
std::string& out_path() {
  static std::string* p = new std::string();
  return *p;
}

std::uint32_t thread_tid() {
  return static_cast<std::uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffffff);
}

void flush_at_exit() { flush(); }

void register_atexit() {
  static bool once = [] {
    std::atexit(flush_at_exit);
    return true;
  }();
  (void)once;
}

std::string escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
  return out;
}

}  // namespace

namespace detail {

bool env_enabled() {
  const char* v = std::getenv("ADARNET_TRACE");
  if (v == nullptr || v[0] == '\0' ||
      (v[0] == '0' && v[1] == '\0')) {
    return false;
  }
  out_path() = (v[0] == '1' && v[1] == '\0') ? "adarnet_trace.json" : v;
  register_atexit();  // a trace-enabled run always produces the file
  return true;
}

std::int64_t now_us() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

void record(const char* name, std::int64_t ts_us, std::int64_t dur_us) {
  const std::uint32_t tid = thread_tid();
  std::lock_guard<std::mutex> lock(g_mutex);
  events().push_back(Event{name, ts_us, dur_us, tid});
  register_atexit();
}

}  // namespace detail

void set_path(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    out_path() = path;
  }
  detail::g_enabled.store(!path.empty(), std::memory_order_relaxed);
  if (!path.empty()) register_atexit();
}

std::string path() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return out_path();
}

bool flush() {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (out_path().empty()) return false;
  std::ofstream out(out_path());
  if (!out) return false;
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const Event& e : events()) {
    if (!first) out << ",";
    first = false;
    out << "\n  {\"name\": \"" << escape(e.name)
        << "\", \"cat\": \"adarnet\", \"ph\": \"X\", \"ts\": " << e.ts_us
        << ", \"dur\": " << e.dur_us << ", \"pid\": 1, \"tid\": " << e.tid
        << "}";
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return static_cast<bool>(out);
}

void clear() {
  std::lock_guard<std::mutex> lock(g_mutex);
  events().clear();
}

std::size_t event_count() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return events().size();
}

}  // namespace adarnet::util::trace
