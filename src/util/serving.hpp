// Hardened flow-as-a-service on top of the POSIX-socket machinery
// (DESIGN.md §13, ROADMAP item 3).
//
// POST a scenario (case id + Re + solver knobs), get back the solved flow
// summary. The design is robustness-first: a service that sheds load
// predictably beats one that is fast until it wedges.
//
//   * Bounded admission queue. Accepted connections enter a fixed-capacity
//     queue; when it is full the acceptor answers 503 + Retry-After
//     immediately and closes — never unbounded buffering, so memory under
//     a storm is the queue capacity times one fd-sized entry.
//   * Deadlines + cooperative cancellation. Every request carries a
//     deadline measured from *admission* (queue wait counts). The worker
//     stamps a util::CancelToken and threads it through PipelineConfig /
//     SolverConfig, where it is checked at pipeline rung boundaries, per
//     outer SIMPLE iteration, and per multigrid V-cycle — a timed-out
//     request returns its best iterate (finite field, converged = false,
//     residuals reported) instead of holding a worker hostage. No thread
//     is ever killed.
//   * Graceful degradation ladder for the service itself. On deadline
//     pressure the worker downgrades the work it attempts:
//         full      DNN + solve to convergence (the paper's pipeline)
//         capped    DNN + iteration budget scaled to the remaining time
//         cached    content-addressed result for (case, Re-bucket)
//         freestream  analytic freestream summary, O(1)
//     The stage is recorded in the response ("service_stage") next to the
//     pipeline's own fallback_stage, and a per-case EMA of full-solve
//     wall time drives the downgrade decision.
//   * Fault hooks. serving.worker.crash (worker throws mid-dispatch; the
//     worker survives and the request degrades) and serving.queue.storm
//     (admission behaves as if the queue were full) compose with the
//     solver-side sites for chaos testing (tests/test_serving.cpp,
//     bench/bench_serving.cpp).
//
// Endpoints (loopback only, like the telemetry server):
//   POST /solve       {"case": "channel", "re": 2500, "deadline_ms": 500,
//                      "max_outer": 400, "tol": 5e-4}  (all but case/re
//                      optional) -> solution summary JSON, including the
//                      request's "trace_id" — feed it to the telemetry
//                      server's GET /trace/<id>.json to explain the request
//   GET  /healthz     liveness
//   GET  /stats.json  admission/shed/stage counters + queue depth, plus
//                     trailing-60s rates (QPS, shed, deadline hits) and
//                     the SLO good/burn rates under "window_60s"
#pragma once

#if !defined(_WIN32)
#define ADARNET_SERVING_SOCKETS 1
#endif

#include <memory>
#include <string>

#include "adarnet/pipeline.hpp"
#include "data/cases.hpp"

namespace adarnet::util::serving {

/// Which rung of the *service* degradation ladder produced a response
/// (orthogonal to core::FallbackStage, which tracks the pipeline's own
/// hand-off ladder within a solve).
enum class ServiceStage : int {
  kFull = 0,    ///< DNN + solve with the configured budget
  kCapped,      ///< DNN + iteration budget scaled to the remaining time
  kCached,      ///< cached result for (case, Re-bucket), no solve
  kFreestream,  ///< analytic freestream summary, no solve
};

/// Human-readable stage name ("full", "capped", "cached", "freestream").
const char* to_string(ServiceStage stage);

/// Server tuning. Defaults serve the paper-scale wall/body presets; tests
/// and the bench shrink them.
struct ServingConfig {
  int port = 0;              ///< 0 = ephemeral (bound_port() after start)
  int workers = 2;           ///< worker threads (each owns a model replica)
  int queue_capacity = 8;    ///< bounded admission queue; beyond = 503
  int retry_after_s = 1;     ///< Retry-After header on shed responses
  int io_timeout_ms = 2000;  ///< per-connection SO_RCVTIMEO/SO_SNDTIMEO
  int cache_capacity = 32;   ///< LRU entries in the (case, Re-bucket) cache

  double default_deadline_s = 30.0;  ///< when the request names none
  double max_deadline_s = 300.0;     ///< requested deadlines are clamped
  double min_solve_s = 0.02;   ///< below this remaining budget, skip the
                               ///< solver entirely (cached/freestream)
  double full_headroom = 1.2;  ///< run a full solve only when remaining >
                               ///< headroom * EMA(full-solve seconds)
  double assumed_full_solve_s = 0.0;  ///< seeds the EMA (0 = first full
                                      ///< solve measures it)

  // Request-scoped observability (DESIGN.md §15). Every admitted /solve
  // request gets a RequestContext (trace id, span tree, per-phase wall
  // attribution) and lands in the process flight recorder, which the
  // telemetry server exposes as GET /requests.json + /trace/<id>.json.
  int recorder_depth = 256;        ///< retained full span trees; 0 disarms
                                   ///< per-request tracing + recording
  int recorder_slowest = 16;       ///< slowest-N traces always retained
  int recorder_sample_every = 16;  ///< head-sample 1 in K boring requests

  // SLO objective behind the serving.slo.* gauges: a response is "good"
  // when it is 200, did not blow its deadline, and finished inside the
  // latency objective; burn rate = (1 - good_rate) / (1 - availability)
  // over the trailing 60 s window (1.0 = burning exactly the error budget).
  double slo_latency_ms = 1000.0;  ///< latency objective per response
  double slo_availability = 0.99;  ///< availability objective in (0, 1)

  data::GridPreset wall_preset = data::paper_wall_preset();
  data::GridPreset body_preset = data::paper_body_preset();
  solver::SolverConfig solver;     ///< base solver budget (max_outer, tol)
  core::GuardConfig guards;        ///< pipeline hand-off guards
  unsigned seed = 2023;            ///< model replica init seed
};

/// Monotonic counters snapshot (test/bench introspection without HTTP).
struct ServerStats {
  long long accepted = 0;        ///< connections accepted
  long long admitted = 0;        ///< entered the queue
  long long shed = 0;            ///< 503'd at admission (full or storm)
  long long responses = 0;       ///< responses written (any status)
  long long solves = 0;          ///< requests that ran the pipeline
  long long deadline_misses = 0; ///< responses produced after expiry
  long long cancelled = 0;       ///< solves cut short by their token
  long long worker_crashes = 0;  ///< faults caught by the worker guard
  long long stalled_reads = 0;   ///< request reads that hit the timeout
  long long stage_full = 0;
  long long stage_capped = 0;
  long long stage_cached = 0;
  long long stage_freestream = 0;
  int max_queue_depth = 0;       ///< high-water mark (<= queue_capacity)
};

/// One parsed POST /solve request (exposed for tests).
struct SolveRequest {
  std::string case_name = "channel";  ///< channel | flat_plate | cylinder |
                                      ///< naca0012 | naca1412
  double re = 2.5e3;
  double deadline_s = 0.0;  ///< 0 = server default
  int max_outer = 0;        ///< 0 = server default
  double tol = 0.0;         ///< 0 = server default
};

/// Parses the flat-JSON body of POST /solve. Returns "" and fills `req`
/// on success, else a reason string for the 400 response.
std::string parse_solve_request(const std::string& body, SolveRequest& req);

/// The multi-worker inference service. start()/stop() are thread-safe;
/// stop() cancels in-flight solves cooperatively (chained tokens), drains
/// the queue with instant degraded responses, and joins every thread.
class Server {
 public:
  explicit Server(ServingConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds 127.0.0.1 and spawns the acceptor + workers. False if already
  /// running or the socket cannot be opened.
  bool start();

  /// Cooperative shutdown: no thread kills, in-flight requests finish
  /// degraded. Safe to call twice.
  void stop();

  [[nodiscard]] bool running() const;
  [[nodiscard]] int bound_port() const;
  [[nodiscard]] const ServingConfig& config() const;
  [[nodiscard]] ServerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace adarnet::util::serving
