// Deterministic random number generation.
//
// All stochastic choices in the library (weight init, dataset sampling,
// boundary-condition sweeps) flow through Rng so that every test and bench
// is reproducible from a seed.
#pragma once

#include <cstdint>
#include <random>

namespace adarnet::util {

/// Seeded pseudo-random generator wrapping std::mt19937_64.
class Rng {
 public:
  /// Constructs a generator from a fixed seed (default: library-wide seed).
  explicit Rng(std::uint64_t seed = 0x5f3759df) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform float in [lo, hi).
  float uniformf(float lo, float hi) {
    return std::uniform_real_distribution<float>(lo, hi)(engine_);
  }

  /// Normal (Gaussian) double with the given mean and stddev.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Access to the underlying engine (for std::shuffle and friends).
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace adarnet::util
