// Process-wide metrics registry: named counters, gauges, and log-scale
// histograms shared by every layer of the framework (trainer, model
// inference, pipeline, solver). The benches snapshot the registry into
// their BENCH_*.json files so one document attributes the end-to-end wall
// time to named stages (DESIGN.md §9 documents the naming scheme).
//
// Discipline mirrors util/fault: the hot path is lock-free and the
// disabled path is a single relaxed atomic load. Instruments are looked up
// by name once (call sites cache the returned reference, typically in a
// function-local static); after that an update is one relaxed atomic RMW,
// safe from any thread and cheap enough for per-solve / per-batch sites —
// per-cell loops should still aggregate locally and publish once.
//
// Enable/disable: on by default; ADARNET_METRICS=0 (or "off") in the
// environment disables the process, set_enabled() toggles at runtime.
// Disabling freezes updates but keeps registered instruments readable.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace adarnet::util::metrics {

namespace detail {
/// Reads ADARNET_METRICS once at static-init time (default: enabled).
bool env_enabled();
inline std::atomic<bool> g_enabled{env_enabled()};
}  // namespace detail

/// True while metric updates are being recorded.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Toggles recording process-wide (overrides the ADARNET_METRICS default).
void set_enabled(bool on);

/// Monotonic counter. Durations are counted in integer nanoseconds by
/// convention (name suffix ".ns") so no floating-point atomics are needed.
class Counter {
 public:
  void add(long long delta = 1) {
    if (enabled()) v_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Adds a wall-time duration in seconds to a ".ns" counter.
  void add_seconds(double s) {
    add(static_cast<long long>(s * 1e9));
  }
  [[nodiscard]] long long value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long long> v_{0};
};

/// Last-write-wins scalar (plus a monotonic-max helper).
class Gauge {
 public:
  void set(double v) {
    if (enabled()) v_.store(v, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if larger (high-water marks).
  void max(double v);
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log-scale histogram of non-negative integer observations. Bucket 0
/// holds the value 0; bucket k >= 1 holds [2^(k-1), 2^k). Exponential
/// buckets keep the array tiny while spanning nanoseconds-to-minutes
/// durations and 0-to-thousands occupancy counts alike.
class Histogram {
 public:
  static constexpr int kBuckets = 65;  // 0, then one per bit of long long

  /// Bucket index of `v` (negatives clamp to bucket 0).
  static int bucket_of(long long v);
  /// Inclusive upper bound of `bucket`'s value range.
  static long long bucket_upper(int bucket);

  void observe(long long v);
  /// Observes `v` and stamps its bucket's exemplar with `exemplar_id` (a
  /// request trace id; 0 leaves the previous exemplar in place). Exemplars
  /// are last-write-wins per bucket and surface only in the OpenMetrics
  /// flavour of the exposition (prometheus_text(true)), linking a latency
  /// bucket to a concrete request in the flight recorder (DESIGN.md §15);
  /// the classic 0.0.4 text format stays exemplar-free. The id and
  /// value stores are independent relaxed atomics: a scrape racing two
  /// observers can pair an id with the other observation's value — both
  /// are genuine exemplars of the same bucket, so the tear is benign.
  void observe(long long v, std::uint64_t exemplar_id);
  [[nodiscard]] std::uint64_t exemplar_id(int bucket) const {
    return exemplar_id_[static_cast<std::size_t>(bucket)].load(
        std::memory_order_relaxed);
  }
  [[nodiscard]] long long exemplar_value(int bucket) const {
    return exemplar_value_[static_cast<std::size_t>(bucket)].load(
        std::memory_order_relaxed);
  }
  [[nodiscard]] long long count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] long long sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] long long max_value() const {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] long long bucket_count(int bucket) const {
    return buckets_[static_cast<std::size_t>(bucket)].load(
        std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const;
  /// Upper bound of the bucket holding quantile `q` in [0, 1] (0 if empty).
  [[nodiscard]] long long quantile(double q) const;
  void reset();

 private:
  std::array<std::atomic<long long>, kBuckets> buckets_{};
  std::array<std::atomic<std::uint64_t>, kBuckets> exemplar_id_{};
  std::array<std::atomic<long long>, kBuckets> exemplar_value_{};
  std::atomic<long long> count_{0};
  std::atomic<long long> sum_{0};
  std::atomic<long long> max_{0};
};

/// Fixed-capacity ring buffer of (x, y) points — the convergence
/// time-series recorder behind the telemetry server's /series.json. Unlike
/// the scalar instruments above it keeps *history*: per-outer-iteration
/// solver residuals, per-epoch training losses, per-run pipeline outcomes.
/// Appends and snapshots serialise on a private mutex; the critical section
/// is two double stores and a counter bump, and the recording cadence is
/// per-iteration / per-epoch (never per-cell), so the lock stays cold.
class TimeSeries {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  struct Point {
    double x = 0.0;
    double y = 0.0;
  };

  explicit TimeSeries(std::size_t capacity = kDefaultCapacity)
      : ring_(capacity > 0 ? capacity : 1) {}
  TimeSeries(const TimeSeries&) = delete;
  TimeSeries& operator=(const TimeSeries&) = delete;

  /// Records one point; once full, the oldest point is overwritten.
  void append(double x, double y);

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Points appended over the series' lifetime (>= size()).
  [[nodiscard]] std::uint64_t total() const;
  /// Points currently held (<= capacity()).
  [[nodiscard]] std::size_t size() const;
  /// The retained points, oldest first.
  [[nodiscard]] std::vector<Point> snapshot() const;
  void reset();

 private:
  mutable std::mutex mu_;
  std::vector<Point> ring_;
  std::uint64_t head_ = 0;  // total appends; head_ % capacity is next slot
};

/// Looks up (registering on first use) the named instrument. The returned
/// reference is stable for the process lifetime; cache it at the call site.
/// Requesting an existing name with a different instrument kind throws.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

/// Looks up (registering on first use) the named time-series. `capacity`
/// applies only on first registration.
TimeSeries& series(const std::string& name,
                   std::size_t capacity = TimeSeries::kDefaultCapacity);

/// Zeroes every registered instrument (registration survives). Benches
/// call this to scope a snapshot to one run; tests call it in SetUp.
void reset();

/// One registry entry in a snapshot, values read with relaxed loads.
struct SnapshotEntry {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  long long count = 0;   ///< counter value / histogram observation count
  double value = 0.0;    ///< gauge value / histogram mean
  long long sum = 0;     ///< histogram sum
  long long max = 0;     ///< histogram max observation
  long long p50 = 0;     ///< histogram median bucket upper bound
  long long p95 = 0;     ///< histogram p95 bucket upper bound
};

/// All registered instruments, sorted by name.
std::vector<SnapshotEntry> snapshot();

/// The snapshot as one JSON object: {"counters": {name: value, ...},
/// "gauges": {...}, "histograms": {name: {count, sum, mean, max, p50,
/// p95}, ...}}. Benches embed this in their BENCH_*.json documents.
/// Time-series are not included (see series_json()).
std::string snapshot_json();

/// Every registered time-series as one JSON object:
/// {"series": {name: {"capacity": c, "total": t, "points": [[x, y], ...]},
/// ...}} — the payload of the telemetry server's /series.json.
std::string series_json();

/// The registry rendered in Prometheus text exposition format — the
/// payload of the telemetry server's /metrics. Metric names are sanitised
/// ("solver.ns" -> adarnet_solver_ns) and the original dotted name is
/// kept in a `name` label so Prometheus series cross-reference DESIGN.md's
/// naming scheme verbatim. Histograms render as cumulative le-buckets at
/// the log-scale bucket upper bounds.
///
/// With `openmetrics` false (the default) the output is the classic text
/// format (version 0.0.4) and carries NO exemplars — they are illegal
/// there and break standard Prometheus parsers. With `openmetrics` true
/// the output is OpenMetrics 1.0: histogram buckets carry their
/// `# {trace_id="..."} value` exemplars and the exposition ends with the
/// mandatory `# EOF` marker. The telemetry server picks the flavour from
/// the scrape's Accept header.
std::string prometheus_text(bool openmetrics = false);

/// RAII scope timer: adds the scope's duration in nanoseconds to a
/// counter (conventionally named "*.ns"). Reads the clock only while
/// metrics are enabled, so a disabled process pays one relaxed load.
class ScopedNs {
 public:
  explicit ScopedNs(Counter& c);
  ~ScopedNs();
  ScopedNs(const ScopedNs&) = delete;
  ScopedNs& operator=(const ScopedNs&) = delete;

 private:
  Counter* c_;
  std::int64_t start_ns_ = 0;
};

}  // namespace adarnet::util::metrics
