// Embedded telemetry HTTP server: watch a running train / infer / solve
// job with nothing but curl.
//
// A single acceptor thread serves read-only endpoints over plain POSIX
// sockets (no dependencies, loopback only):
//
//   /healthz          200 "ok" + uptime — liveness probe
//   /metrics          util::metrics registry in Prometheus text exposition.
//                     Content-negotiated: scrapers sending
//                     "Accept: application/openmetrics-text" get the
//                     OpenMetrics flavour, where latency histogram buckets
//                     carry exemplars linking them to request trace ids;
//                     everyone else gets classic 0.0.4 text, exemplar-free
//                     (exemplars are illegal in that format)
//   /snapshot.json    util::metrics::snapshot_json() (BENCH_*.json shape)
//   /series.json      util::metrics::series_json() (convergence series)
//   /requests.json    flight-recorder summaries, newest first (reqctx)
//   /trace/<id>.json  a retained request's span tree as a chrome://tracing
//                     document; 404 when the id was evicted/never retained
//
// Opt-in: the server only exists when ADARNET_TELEMETRY_PORT is set in the
// environment (port number; 0 picks an ephemeral port, logged at startup)
// or start() is called programmatically. With the variable unset no socket
// is opened and nothing is spawned — the cost is one getenv at static-init
// time. The server binds 127.0.0.1 only; it is an operator tool, not a
// public listener. Requests are served one at a time (scrape cadence is
// seconds; handlers only read lock-free registries), every accepted
// connection carries send/receive timeouts so a stalled client cannot
// wedge the acceptor (detail::set_io_timeout_ms), and the thread is
// joined via atexit before static teardown.
#pragma once

#include <string>

namespace adarnet::util::telemetry {

/// Starts the server on 127.0.0.1:`port` (0 = ephemeral). Returns false if
/// a server is already running or the socket cannot be opened. Thread-safe.
bool start(int port);

/// Stops the server and joins the acceptor thread. Safe to call when not
/// running. Runs automatically at process exit.
void stop();

/// True while the acceptor thread is serving.
bool running();

/// The bound port (0 when not running). With start(0) this is the
/// kernel-assigned ephemeral port.
int bound_port();

/// Requests handled since start() (diagnostics/tests).
long long request_count();

namespace detail {
/// Per-connection SO_RCVTIMEO/SO_SNDTIMEO applied to accepted sockets
/// (default 2000 ms; 0 disables). A client that connects and never sends
/// costs the acceptor at most this long. Tests shrink it so the stalled-
/// client regression stays fast.
void set_io_timeout_ms(int ms);

/// Starts the server when ADARNET_TELEMETRY_PORT is set. Called once from
/// the metrics static initializer so every binary honours the variable;
/// harmless to call again.
void autostart_from_env();

/// Case-insensitive lookup of an HTTP header's value in raw request bytes
/// ("accept" -> "application/openmetrics-text"). Returns "" when absent.
std::string header_value(const std::string& raw_request,
                         const std::string& name);

/// Routes one parsed request to its response (status line + headers +
/// body). `accept` is the request's Accept header value (empty when the
/// client sent none); /metrics uses it to negotiate OpenMetrics vs the
/// classic text format. Exposed so tests can golden-test routing without
/// a socket.
std::string respond(const std::string& method, const std::string& path,
                    const std::string& accept = std::string());
}  // namespace detail

}  // namespace adarnet::util::telemetry
