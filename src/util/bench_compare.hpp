// Comparison engine behind tools/bench_diff: loads two BENCH_*.json
// documents (a committed baseline and a freshly generated report), flattens
// their numeric leaves, and gates the delta. Keys fall into three classes:
//
//  * throughput — achieved rates (gflops_per_s, cells_per_s, speedup*):
//    machine- and load-dependent, so the gate is one-sided: only a drop
//    beyond the tolerance (default 15%) is a regression; being faster than
//    the baseline always passes.
//  * portable — roofline model values (flops, bytes, arithmetic_intensity),
//    accept/* verdict bits, and the serving.attribution/* contract keys:
//    deterministic functions of kernel shapes, identical on every machine.
//    Any drift beyond rounding means the cost model or the benchmarked
//    shapes changed silently, so they are gated both ways and tightly.
//    CI's bench-smoke job runs with portable_only so shared-runner noise
//    cannot flake the gate while model drift still fails it.
//  * ignored — wall times, counters, metric snapshots: expected to vary
//    run to run; never gated.
//
// A baseline key missing from the current report is always a failure (a
// kernel size silently dropped from the bench is exactly the kind of
// coverage loss the gate exists to catch). Keys only in the current report
// are reported but pass — new coverage needs a baseline refresh, not a red
// build.
//
// The JSON subset parsed here is what bench/common.hpp's writers emit
// (objects, arrays, numbers, strings, booleans, null); it is a full JSON
// reader for that subset, not a general validator.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace adarnet::util::bench_compare {

/// Gate configuration.
struct Options {
  double tolerance = 0.15;     ///< allowed relative drop on throughput keys
  bool portable_only = false;  ///< gate only machine-independent keys
};

/// One compared key.
struct Delta {
  std::string key;
  double baseline = 0.0;
  double current = 0.0;
  double rel_change = 0.0;  ///< (current - baseline) / |baseline|
  bool regression = false;
};

/// Outcome of a comparison.
struct Report {
  std::vector<Delta> deltas;         ///< gated keys, in key order
  std::vector<std::string> missing;  ///< baseline keys absent from current
  std::vector<std::string> added;    ///< current keys absent from baseline
  bool pass = true;

  /// Human-readable summary (one line per regression/missing key plus a
  /// PASS/FAIL verdict).
  [[nodiscard]] std::string to_string() const;
};

/// Parses `text` and flattens every numeric leaf into `out`, keyed by the
/// '/'-joined path of object keys and array indices (JSON keys may contain
/// dots, so '/' is the separator: "roofline/by_size/conv.forward.hw16/
/// flops"). Non-numeric leaves are skipped. Returns false and sets *error
/// on malformed input.
bool flatten_json(const std::string& text, std::map<std::string, double>& out,
                  std::string* error = nullptr);

/// Reads the file at `path` and flattens it (see flatten_json).
bool flatten_json_file(const std::string& path,
                       std::map<std::string, double>& out,
                       std::string* error = nullptr);

/// Gate class of a flattened key (see the file comment).
enum class KeyClass { kThroughput, kPortable, kIgnored };
KeyClass classify(const std::string& key);

/// Compares `current` against `baseline` under `opt`.
Report compare(const std::map<std::string, double>& baseline,
               const std::map<std::string, double>& current,
               const Options& opt);

}  // namespace adarnet::util::bench_compare
