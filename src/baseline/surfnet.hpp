// SURFNet-style uniform super-resolution baseline (paper Section 5.2).
//
// SURFNet [Obiols-Sales et al., PACT 2021] performs *uniform* SR: the LR
// field is upsampled to the full target resolution and refined by a CNN
// over the entire HR image. Its inference cost and activation memory scale
// with the uniform HR extent (64x the LR cell count for 64x SR), which is
// precisely the over-provisioning ADARNet removes. The end-to-end baseline
// pipeline mirrors ADARNet's: LR solve -> uniform HR inference -> physics
// solve on the uniform level-n mesh.
#pragma once

#include <memory>

#include "data/normalize.hpp"
#include "field/flow_field.hpp"
#include "mesh/composite.hpp"
#include "nn/memory_model.hpp"
#include "nn/sequential.hpp"
#include "solver/rans.hpp"
#include "util/rng.hpp"

namespace adarnet::baseline {

/// Uniform-SR network: bicubic upsampling + a conv stack over the full HR
/// image (4 flow channels + 2 coordinate channels in, 4 out).
class SurfNet {
 public:
  explicit SurfNet(util::Rng& rng);

  /// Uniform 4^level x super-resolution of a LR field.
  struct Result {
    field::FlowField hr;                  ///< uniform HR prediction
    double seconds = 0.0;                 ///< inference wall time
    std::int64_t measured_peak_bytes = 0; ///< allocator high-water mark
    std::int64_t modeled_bytes = 0;       ///< analytic activation model
  };
  Result infer(const field::FlowField& lr, int level,
               const data::NormStats& stats);

  /// Analytic inference memory for a (ny, nx) HR image.
  [[nodiscard]] nn::MemoryEstimate estimate_memory(int ny, int nx) const {
    return nn::estimate_memory(net_, 1, 6, ny, nx);
  }

  nn::Sequential& net() { return net_; }

 private:
  nn::Sequential net_;
};

/// Cost breakdown of the SURFNet end-to-end pipeline.
struct SurfNetPipelineResult {
  double lr_seconds = 0.0;
  double inf_seconds = 0.0;
  double ps_seconds = 0.0;
  int ps_iterations = 0;
  bool converged = false;
  std::int64_t inference_measured_bytes = 0;
  std::int64_t inference_modeled_bytes = 0;
  std::unique_ptr<mesh::CompositeMesh> mesh;  ///< uniform level-n mesh
  mesh::CompositeField solution;

  [[nodiscard]] double ttc_seconds() const {
    return lr_seconds + inf_seconds + ps_seconds;
  }
};

/// LR solve (or reuse) -> uniform HR inference -> uniform fine solve.
SurfNetPipelineResult run_surfnet_pipeline(
    SurfNet& model, const mesh::CaseSpec& spec, int level,
    const data::NormStats& stats, const solver::SolverConfig& ps_config,
    const field::FlowField& lr, double lr_seconds);

}  // namespace adarnet::baseline
