#include "baseline/surfnet.hpp"

#include "field/interp.hpp"
#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "util/timer.hpp"

namespace adarnet::baseline {

SurfNet::SurfNet(util::Rng& rng) {
  // A SURFNet-like refinement stack: four 3x3 convs over the full HR image
  // (32-filter body). Uniform processing of every HR pixel is the defining
  // cost characteristic being compared, not the exact filter counts.
  net_.emplace<nn::Conv2D>(6, 32, 3, rng);
  net_.emplace<nn::ReLU>();
  net_.emplace<nn::Conv2D>(32, 32, 3, rng);
  net_.emplace<nn::ReLU>();
  net_.emplace<nn::Conv2D>(32, 32, 3, rng);
  net_.emplace<nn::ReLU>();
  net_.emplace<nn::Conv2D>(32, 4, 3, rng);
}

SurfNet::Result SurfNet::infer(const field::FlowField& lr, int level,
                               const data::NormStats& stats) {
  util::WallTimer timer;
  nn::memory::reset_peak();
  const std::int64_t base = nn::memory::peak_bytes();

  const int ny = lr.ny() << level;
  const int nx = lr.nx() << level;

  // Uniform bicubic upsampling of all four channels + coordinate planes.
  nn::Tensor input(1, 6, ny, nx);
  for (int c = 0; c < field::kNumFlowVars; ++c) {
    field::Grid2Dd up = field::resize(lr.channel(c), ny, nx,
                                      field::Interp::kBicubic);
    for (int i = 0; i < ny; ++i) {
      for (int j = 0; j < nx; ++j) {
        input.at(0, c, i, j) = static_cast<float>(stats.encode(c, up(i, j)));
      }
    }
  }
  for (int i = 0; i < ny; ++i) {
    const float y = (i + 0.5f) / ny;
    for (int j = 0; j < nx; ++j) {
      input.at(0, 4, i, j) = (j + 0.5f) / nx;
      input.at(0, 5, i, j) = y;
    }
  }

  nn::Tensor out = net_.forward(input, /*train=*/false);

  Result result;
  result.hr = field::FlowField(ny, nx);
  for (int c = 0; c < field::kNumFlowVars; ++c) {
    auto& chan = result.hr.channel(c);
    for (int i = 0; i < ny; ++i) {
      for (int j = 0; j < nx; ++j) {
        double v = stats.decode(c, out.at(0, c, i, j));
        if (c == 3) v = std::max(v, 0.0);
        chan(i, j) = v;
      }
    }
  }
  result.seconds = timer.seconds();
  result.measured_peak_bytes = nn::memory::peak_bytes() - base;
  result.modeled_bytes = estimate_memory(ny, nx).total();
  return result;
}

SurfNetPipelineResult run_surfnet_pipeline(
    SurfNet& model, const mesh::CaseSpec& spec, int level,
    const data::NormStats& stats, const solver::SolverConfig& ps_config,
    const field::FlowField& lr, double lr_seconds) {
  SurfNetPipelineResult result;
  result.lr_seconds = lr_seconds;

  SurfNet::Result inf = model.infer(lr, level, stats);
  result.inf_seconds = inf.seconds;
  result.inference_measured_bytes = inf.measured_peak_bytes;
  result.inference_modeled_bytes = inf.modeled_bytes;

  // Physics solve on the uniform level-n mesh, warm-started from the
  // uniform HR prediction.
  auto cm = std::make_unique<mesh::CompositeMesh>(
      spec, mesh::RefinementMap(spec.npy(), spec.npx(), level));
  auto f = mesh::make_field(*cm);
  // fill_from_uniform expects the LR shape; sample the HR prediction by
  // temporarily treating it as the base field of a level-refined mesh.
  {
    const double dx = spec.lx / inf.hr.nx();
    const double dy = spec.ly / inf.hr.ny();
    for (int c = 0; c < field::kNumFlowVars; ++c) {
      const auto& src = inf.hr.channel(c);
      auto& dst = f.channel(c);
      for (int k = 0; k < cm->patch_count(); ++k) {
        const mesh::PatchMesh& pm = cm->patch_flat(k);
        for (int i = 0; i <= pm.ny + 1; ++i) {
          const double yi = pm.yc(i) / dy - 0.5;
          for (int j = 0; j <= pm.nx + 1; ++j) {
            const double xi = pm.xc(j) / dx - 0.5;
            double v = field::sample(src, yi, xi, field::Interp::kBilinear);
            if (pm.solid(i, j)) v = 0.0;
            if (c == 3) v = std::max(v, 0.0);
            dst[k](i, j) = v;
          }
        }
      }
    }
  }
  solver::RansSolver rans(*cm, ps_config);
  const auto ps = rans.solve(f);
  result.ps_seconds = ps.seconds;
  result.ps_iterations = ps.iterations;
  result.converged = ps.converged;
  result.mesh = std::move(cm);
  result.solution = std::move(f);
  return result;
}

}  // namespace adarnet::baseline
